//! Binding: name resolution and construction of the naive logical plan
//! (the Figure 3(b) stage).
//!
//! The binder validates the query against the catalog, assigns global field
//! ids, classifies predicates (relation-local vs join vs residual), and
//! produces a left-deep join tree in syntactic order with:
//! relation-local selections directly above their leaves, join conditions on
//! join nodes, residual predicates above the topmost join, then
//! Sort → Stop → Project/Aggregate.

use super::logical::{LogicalPlan, Stop, StopKind};
use super::pred::{BoundPredicate, InOperand, Operand};
use super::provenance::Provenance;
use super::schema::{FieldId, QuerySchema, RelId, RelationSource, ResolveError};
use crate::ast::{AggFunc, InList, Predicate, RowBound, ScalarExpr, SelectItem, SelectStmt};
use crate::catalog::Catalog;
use crate::codec::key::Dir;
use crate::value::DataType;
use std::fmt;

/// A bound aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundAggregate {
    pub func: AggFunc,
    pub arg: Option<FieldId>,
    pub alias: String,
}

/// A parameter slot expected at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSlot {
    pub index: usize,
    pub name: String,
    /// `Some(max)` when the slot expects a collection.
    pub collection_max: Option<u64>,
}

/// One column of the query's output.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputField {
    pub name: String,
    pub ty: DataType,
}

/// Result of binding a SELECT.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub schema: QuerySchema,
    /// The naive logical plan (Figure 3(b)).
    pub plan: LogicalPlan,
    pub row_bound: Option<RowBound>,
    pub output: Vec<OutputField>,
    pub params: Vec<ParamSlot>,
}

/// Binding errors.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    UnknownTable(String),
    Resolve(ResolveError),
    DuplicateBinding(String),
    TypeMismatch {
        context: String,
        expected: DataType,
        found: String,
    },
    Unsupported(String),
    ParamConflict(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            BindError::Resolve(e) => write!(f, "{e}"),
            BindError::DuplicateBinding(b) => {
                write!(f, "duplicate relation binding '{b}'")
            }
            BindError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            BindError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            BindError::ParamConflict(msg) => write!(f, "parameter conflict: {msg}"),
        }
    }
}

impl std::error::Error for BindError {}

impl From<ResolveError> for BindError {
    fn from(e: ResolveError) -> Self {
        BindError::Resolve(e)
    }
}

/// Bind `stmt` against `catalog`.
pub fn bind(catalog: &Catalog, stmt: &SelectStmt) -> Result<BoundQuery, BindError> {
    let mut schema = QuerySchema::default();
    let mut bindings = std::collections::BTreeSet::new();

    let add_rel = |schema: &mut QuerySchema,
                   bindings: &mut std::collections::BTreeSet<String>,
                   tref: &crate::ast::TableRef|
     -> Result<RelId, BindError> {
        let table = catalog
            .table(&tref.table)
            .ok_or_else(|| BindError::UnknownTable(tref.table.clone()))?;
        let binding = tref.binding_name().to_string();
        if !bindings.insert(binding.to_ascii_lowercase()) {
            return Err(BindError::DuplicateBinding(binding));
        }
        Ok(schema.add_table(catalog, table.id, &binding))
    };

    add_rel(&mut schema, &mut bindings, &stmt.from)?;
    for join in &stmt.joins {
        add_rel(&mut schema, &mut bindings, &join.table)?;
    }

    // ---- predicates: WHERE plus every ON clause, all one conjunction.
    let mut all_preds = Vec::new();
    for p in stmt
        .filter
        .iter()
        .chain(stmt.joins.iter().flat_map(|j| j.on.iter()))
    {
        all_preds.push(bind_predicate(catalog, &schema, p)?);
    }

    // ---- classify
    let n_rels = schema.relations.len();
    let mut local: Vec<Vec<BoundPredicate>> = vec![Vec::new(); n_rels];
    let mut join_conds: Vec<(FieldId, FieldId)> = Vec::new();
    let mut residual: Vec<BoundPredicate> = Vec::new();
    for pred in all_preds {
        let rels: std::collections::BTreeSet<RelId> =
            pred.fields().iter().map(|&f| schema.rel_of(f)).collect();
        if rels.len() <= 1 {
            let rel = rels
                .into_iter()
                .next()
                .expect("predicate references a field");
            local[rel].push(pred);
        } else if let Some((l, r)) = pred.as_join_equality() {
            join_conds.push((l, r));
        } else {
            residual.push(pred);
        }
    }

    // ---- naive left-deep join tree in syntactic order
    let mut plan = LogicalPlan::selection(
        LogicalPlan::Relation { rel: 0 },
        std::mem::take(&mut local[0]),
    );
    for (rel, local_preds) in local.iter_mut().enumerate().skip(1) {
        let right =
            LogicalPlan::selection(LogicalPlan::Relation { rel }, std::mem::take(local_preds));
        // join conditions whose later relation is `rel` and whose other side
        // is already in the left subtree
        let mut on = Vec::new();
        join_conds.retain(|&(a, b)| {
            let (ra, rb) = (schema.rel_of(a), schema.rel_of(b));
            if ra == rel && rb < rel {
                on.push((b, a));
                false
            } else if rb == rel && ra < rel {
                on.push((a, b));
                false
            } else {
                true
            }
        });
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            on,
        };
    }
    if !join_conds.is_empty() {
        // equality between two relations neither of which is the later one —
        // only possible with self-referencing conditions; keep as residual
        for (l, r) in join_conds {
            residual.push(BoundPredicate::FieldCompare {
                left: l,
                op: crate::ast::CompareOp::Eq,
                right: r,
            });
        }
    }
    plan = LogicalPlan::selection(plan, residual);

    // ---- aggregate / sort / stop / project
    let mut aggs = Vec::new();
    let mut proj_items: Vec<(FieldId, String)> = Vec::new();
    let mut has_aggregate = false;
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for (id, f) in schema.fields.iter().enumerate() {
                    if matches!(schema.relations[f.rel_id].source, RelationSource::Table(_)) {
                        proj_items.push((id, f.name.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let rel = schema.resolve_relation(q)?;
                for id in schema.relation(rel).fields() {
                    proj_items.push((id, schema.field(id).name.clone()));
                }
            }
            SelectItem::Column { column, alias } => {
                let id = schema.resolve(column)?;
                let name = alias.clone().unwrap_or_else(|| column.column.clone());
                proj_items.push((id, name));
            }
            SelectItem::Aggregate(a) => {
                has_aggregate = true;
                let arg = a.arg.as_ref().map(|c| schema.resolve(c)).transpose()?;
                let alias = a.alias.clone().unwrap_or_else(|| match &a.arg {
                    Some(c) => format!("{}_{}", a.func, c.column).to_lowercase(),
                    None => a.func.to_string().to_lowercase(),
                });
                aggs.push(BoundAggregate {
                    func: a.func,
                    arg,
                    alias,
                });
            }
        }
    }

    let group_by: Vec<FieldId> = stmt
        .group_by
        .iter()
        .map(|c| schema.resolve(c))
        .collect::<Result<_, _>>()?;
    if !group_by.is_empty() && !has_aggregate {
        return Err(BindError::Unsupported(
            "GROUP BY requires aggregate functions in the projection".into(),
        ));
    }
    if has_aggregate {
        // standard SQL: non-aggregate projection items must be group keys
        for (fid, _) in &proj_items {
            if !group_by.contains(fid) {
                return Err(BindError::Unsupported(format!(
                    "projection column {} must appear in GROUP BY",
                    schema.field(*fid).qualified_name()
                )));
            }
        }
    }

    let sort_keys: Vec<(FieldId, Dir)> = stmt
        .order_by
        .iter()
        .map(|o| Ok::<_, BindError>((schema.resolve(&o.column)?, o.dir)))
        .collect::<Result<_, _>>()?;
    if !sort_keys.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: sort_keys,
        };
    }
    if let Some(bound) = stmt.bound {
        plan = LogicalPlan::Stop {
            input: Box::new(plan),
            stop: Stop {
                kind: StopKind::Standard,
                count: bound.count(),
                provenance: if bound.is_paginated() {
                    Provenance::Paginate {
                        page: bound.count(),
                    }
                } else {
                    Provenance::Limit {
                        count: bound.count(),
                    }
                },
                cause: Vec::new(),
            },
        };
    }

    let output: Vec<OutputField>;
    if has_aggregate {
        output = group_by
            .iter()
            .map(|&g| OutputField {
                name: schema.field(g).name.clone(),
                ty: schema.field(g).ty,
            })
            .chain(aggs.iter().map(|a| {
                OutputField {
                    name: a.alias.clone(),
                    ty: match a.func {
                        AggFunc::Count => DataType::BigInt,
                        AggFunc::Avg => DataType::Double,
                        _ => a
                            .arg
                            .map(|f| schema.field(f).ty)
                            .unwrap_or(DataType::BigInt),
                    },
                }
            }))
            .collect();
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggs,
        };
    } else {
        output = proj_items
            .iter()
            .map(|(fid, name)| OutputField {
                name: name.clone(),
                ty: schema.field(*fid).ty,
            })
            .collect();
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            items: proj_items,
        };
    }

    let params = collect_params(&plan)?;
    Ok(BoundQuery {
        schema,
        plan,
        row_bound: stmt.bound,
        output,
        params,
    })
}

fn bind_predicate(
    catalog: &Catalog,
    schema: &QuerySchema,
    pred: &Predicate,
) -> Result<BoundPredicate, BindError> {
    let _ = catalog;
    Ok(match pred {
        Predicate::Compare { left, op, right } => {
            let field = schema.resolve(left)?;
            match right {
                ScalarExpr::Column(c) => {
                    let right = schema.resolve(c)?;
                    BoundPredicate::FieldCompare {
                        left: field,
                        op: *op,
                        right,
                    }
                }
                ScalarExpr::Literal(v) => {
                    let ty = schema.field(field).ty;
                    let coerced = v.coerce(ty).ok_or_else(|| BindError::TypeMismatch {
                        context: format!("predicate on {}", schema.field(field).qualified_name()),
                        expected: ty,
                        found: v.to_string(),
                    })?;
                    BoundPredicate::Compare {
                        field,
                        op: *op,
                        operand: Operand::Literal(coerced),
                    }
                }
                ScalarExpr::Param(p) => BoundPredicate::Compare {
                    field,
                    op: *op,
                    operand: Operand::Param(p.clone()),
                },
            }
        }
        Predicate::Like { column, pattern } => {
            let field = schema.resolve(column)?;
            if !matches!(schema.field(field).ty, DataType::Varchar(_)) {
                return Err(BindError::TypeMismatch {
                    context: format!("LIKE on {}", schema.field(field).qualified_name()),
                    expected: DataType::Varchar(0),
                    found: schema.field(field).ty.to_string(),
                });
            }
            let operand = match pattern {
                ScalarExpr::Literal(v) => Operand::Literal(v.clone()),
                ScalarExpr::Param(p) => Operand::Param(p.clone()),
                ScalarExpr::Column(_) => {
                    return Err(BindError::Unsupported("LIKE against another column".into()))
                }
            };
            // The §7.3 rewrite: LIKE becomes a tokenized search served by an
            // inverted TOKEN index.
            BoundPredicate::TokenMatch { field, operand }
        }
        Predicate::In { column, list } => {
            let field = schema.resolve(column)?;
            let operand = match list {
                InList::Values(vs) => {
                    let ty = schema.field(field).ty;
                    let coerced: Option<Vec<_>> = vs.iter().map(|v| v.coerce(ty)).collect();
                    InOperand::Values(coerced.ok_or_else(|| BindError::TypeMismatch {
                        context: format!("IN list on {}", schema.field(field).qualified_name()),
                        expected: ty,
                        found: "incompatible literal".into(),
                    })?)
                }
                InList::Param(p) => InOperand::Param(p.clone()),
            };
            BoundPredicate::In { field, operand }
        }
        Predicate::IsNull { column, negated } => BoundPredicate::IsNull {
            field: schema.resolve(column)?,
            negated: *negated,
        },
    })
}

/// Collect parameter slots from a plan, checking that one index is used
/// consistently (same name, same kind).
fn collect_params(plan: &LogicalPlan) -> Result<Vec<ParamSlot>, BindError> {
    let mut slots: Vec<Option<ParamSlot>> = Vec::new();
    let mut visit_operand = |op: &Operand, slots: &mut Vec<Option<ParamSlot>>| {
        if let Operand::Param(p) = op {
            record(slots, p.index, &p.name, None)
        } else {
            Ok(())
        }
    };
    fn record(
        slots: &mut Vec<Option<ParamSlot>>,
        index: usize,
        name: &str,
        collection_max: Option<u64>,
    ) -> Result<(), BindError> {
        if slots.len() <= index {
            slots.resize(index + 1, None);
        }
        match &slots[index] {
            None => {
                slots[index] = Some(ParamSlot {
                    index,
                    name: name.to_string(),
                    collection_max,
                });
                Ok(())
            }
            Some(existing) => {
                if !existing.name.eq_ignore_ascii_case(name)
                    || existing.collection_max.is_some() != collection_max.is_some()
                {
                    Err(BindError::ParamConflict(format!(
                        "parameter {} bound as both '{}' and '{}'",
                        index + 1,
                        existing.name,
                        name
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
    let mut stack = vec![plan];
    while let Some(node) = stack.pop() {
        match node {
            LogicalPlan::Selection { input, predicates } => {
                for p in predicates {
                    visit_pred(p, &mut slots, &mut visit_operand)?;
                }
                stack.push(input);
            }
            LogicalPlan::Join { left, right, .. } => {
                stack.push(left);
                stack.push(right);
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Stop { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => stack.push(input),
            LogicalPlan::Relation { .. } | LogicalPlan::ParamValues { .. } => {}
        }
    }
    fn visit_pred(
        p: &BoundPredicate,
        slots: &mut Vec<Option<ParamSlot>>,
        visit_operand: &mut impl FnMut(&Operand, &mut Vec<Option<ParamSlot>>) -> Result<(), BindError>,
    ) -> Result<(), BindError> {
        match p {
            BoundPredicate::Compare { operand, .. }
            | BoundPredicate::TokenMatch { operand, .. } => visit_operand(operand, slots),
            BoundPredicate::In { operand, .. } => match operand {
                InOperand::Param(prm) => record(
                    slots,
                    prm.index,
                    &prm.name,
                    Some(prm.max_cardinality.unwrap_or(u64::MAX)),
                ),
                InOperand::Values(_) => Ok(()),
            },
            BoundPredicate::FieldCompare { .. } | BoundPredicate::IsNull { .. } => Ok(()),
        }
    }
    Ok(slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or(ParamSlot {
                index: i,
                name: format!("p{}", i + 1),
                collection_max: None,
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::parser::parse_select;

    fn scadr_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            TableDef::builder("users")
                .column("username", DataType::Varchar(32))
                .column("home_town", DataType::Varchar(64))
                .primary_key(&["username"])
                .build(),
        )
        .unwrap();
        cat.create_table(
            TableDef::builder("subscriptions")
                .column("owner", DataType::Varchar(32))
                .column("target", DataType::Varchar(32))
                .column("approved", DataType::Bool)
                .primary_key(&["owner", "target"])
                .cardinality_limit(100, &["owner"])
                .build(),
        )
        .unwrap();
        cat.create_table(
            TableDef::builder("thoughts")
                .column("owner", DataType::Varchar(32))
                .column("timestamp", DataType::Timestamp)
                .column("text", DataType::Varchar(140))
                .primary_key(&["owner", "timestamp"])
                .build(),
        )
        .unwrap();
        cat
    }

    #[test]
    fn binds_thoughtstream_to_naive_plan() {
        let cat = scadr_catalog();
        let stmt = parse_select(
            "SELECT t.* FROM subscriptions s JOIN thoughts t \
             WHERE t.owner = s.target AND s.owner = <uname> AND s.approved = true \
             ORDER BY t.timestamp DESC LIMIT 10",
        )
        .unwrap();
        let bq = bind(&cat, &stmt).unwrap();
        assert_eq!(bq.schema.relations.len(), 2);
        assert_eq!(bq.output.len(), 3); // thoughts.*
        assert_eq!(bq.params.len(), 1);
        // shape: Project(Stop(Sort(Join(Selection(Relation s), Relation t))))
        let rendered = format!("{}", bq.plan.display_with(&bq.schema));
        assert!(rendered.contains("Stop(10, from LIMIT 10)"));
        assert!(rendered.contains("Join(s.target = t.owner)"));
        assert!(rendered.contains("Selection(s.owner = [1: uname], s.approved = true)"));
    }

    #[test]
    fn rejects_unknowns_and_type_errors() {
        let cat = scadr_catalog();
        let q = parse_select("SELECT * FROM nope").unwrap();
        assert!(matches!(bind(&cat, &q), Err(BindError::UnknownTable(_))));
        let q = parse_select("SELECT * FROM users WHERE username = 5").unwrap();
        assert!(matches!(
            bind(&cat, &q),
            Err(BindError::TypeMismatch { .. })
        ));
        let q = parse_select("SELECT * FROM users u JOIN users u").unwrap();
        assert!(matches!(
            bind(&cat, &q),
            Err(BindError::DuplicateBinding(_))
        ));
    }

    #[test]
    fn group_by_validation() {
        let cat = scadr_catalog();
        let q = parse_select(
            "SELECT owner, COUNT(*) FROM thoughts WHERE owner = <u> GROUP BY owner LIMIT 5",
        )
        .unwrap();
        let bq = bind(&cat, &q).unwrap();
        assert_eq!(bq.output.len(), 2);
        assert_eq!(bq.output[1].ty, DataType::BigInt);
        let bad = parse_select("SELECT text, COUNT(*) FROM thoughts GROUP BY owner").unwrap();
        assert!(bind(&cat, &bad).is_err());
    }
}
