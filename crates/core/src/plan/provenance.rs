//! Structured bound provenance.
//!
//! Every static limit the optimizer derives — a scan's limit hint, a
//! sorted join's per-probe fetch count, a data-stop's row count — is
//! justified by something in the query or the schema: a `LIMIT` /
//! `PAGINATE` clause, a primary key, a `CARDINALITY LIMIT` declaration,
//! or a collection parameter's declared `MAX`. [`Provenance`] records
//! that justification as data rather than a display string, so the
//! audit subsystem can answer *why* a bound holds (and suggest what to
//! change when it doesn't) while `Display` keeps the exact rendering
//! the plan printers always used.

use std::fmt;

/// The justification for one static bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// A `LIMIT k` clause on the query.
    Limit { count: u64 },
    /// A `PAGINATE k` clause on the query.
    Paginate { page: u64 },
    /// Equality on a full primary key: at most one matching row.
    PrimaryKey { table: String },
    /// A schema `CARDINALITY LIMIT n (columns)` relationship constraint.
    Cardinality {
        table: String,
        limit: u64,
        columns: Vec<String>,
    },
    /// A `CARDINALITY LIMIT` on an inverted `TOKEN(column)` index.
    TokenCardinality {
        table: String,
        limit: u64,
        column: String,
    },
    /// A collection parameter's declared maximum: `[p MAX n]`.
    ParamMax { param: String, max: u64 },
    /// Cost-based baseline only: a statistics-based expectation, not a
    /// guarantee (§8.3). Plans carrying it are never scale-independent.
    Estimate,
}

impl Provenance {
    /// Stable machine-readable tag (JSON reports, diagnostics).
    pub fn kind(&self) -> &'static str {
        match self {
            Provenance::Limit { .. } => "limit",
            Provenance::Paginate { .. } => "paginate",
            Provenance::PrimaryKey { .. } => "primary-key",
            Provenance::Cardinality { .. } => "cardinality",
            Provenance::TokenCardinality { .. } => "token-cardinality",
            Provenance::ParamMax { .. } => "param-max",
            Provenance::Estimate => "estimate",
        }
    }

    /// Whether this bound rests on a declared relationship cardinality or
    /// parameter maximum — the distinction that makes a bounded query
    /// Class II instead of Class I (§4.1).
    pub fn is_cardinality_bound(&self) -> bool {
        matches!(
            self,
            Provenance::Cardinality { .. }
                | Provenance::TokenCardinality { .. }
                | Provenance::ParamMax { .. }
        )
    }

    /// The clause or declaration a developer would edit to change the
    /// bound, in source-like syntax (diagnostic spans).
    pub fn source_clause(&self) -> String {
        match self {
            Provenance::Limit { count } => format!("LIMIT {count}"),
            Provenance::Paginate { page } => format!("PAGINATE {page}"),
            Provenance::PrimaryKey { table } => format!("PRIMARY KEY of {table}"),
            Provenance::Cardinality {
                table,
                limit,
                columns,
            } => format!(
                "CARDINALITY LIMIT {limit} ({}) ON {table}",
                columns.join(", ")
            ),
            Provenance::TokenCardinality {
                table,
                limit,
                column,
            } => format!("CARDINALITY LIMIT {limit} (TOKEN({column})) ON {table}"),
            Provenance::ParamMax { param, max } => format!("[{param} MAX {max}]"),
            Provenance::Estimate => "table statistics (no declared bound)".to_string(),
        }
    }
}

impl fmt::Display for Provenance {
    /// Renders the exact strings the plan printers historically used,
    /// e.g. `LIMIT 10`, `pk(users)`, `CARDINALITY LIMIT 100 (owner)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Limit { count } => write!(f, "LIMIT {count}"),
            Provenance::Paginate { page } => write!(f, "PAGINATE {page}"),
            Provenance::PrimaryKey { table } => write!(f, "pk({table})"),
            Provenance::Cardinality { limit, columns, .. } => {
                write!(f, "CARDINALITY LIMIT {limit} ({})", columns.join(", "))
            }
            Provenance::TokenCardinality { limit, column, .. } => {
                write!(f, "CARDINALITY LIMIT {limit} (TOKEN({column}))")
            }
            Provenance::ParamMax { param, max } => write!(f, "[{param} MAX {max}]"),
            Provenance::Estimate => write!(f, "statistics estimate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_strings() {
        assert_eq!(Provenance::Limit { count: 10 }.to_string(), "LIMIT 10");
        assert_eq!(Provenance::Paginate { page: 20 }.to_string(), "PAGINATE 20");
        assert_eq!(
            Provenance::PrimaryKey {
                table: "users".into()
            }
            .to_string(),
            "pk(users)"
        );
        assert_eq!(
            Provenance::Cardinality {
                table: "subscriptions".into(),
                limit: 100,
                columns: vec!["owner".into()],
            }
            .to_string(),
            "CARDINALITY LIMIT 100 (owner)"
        );
        assert_eq!(
            Provenance::TokenCardinality {
                table: "items".into(),
                limit: 50,
                column: "title".into(),
            }
            .to_string(),
            "CARDINALITY LIMIT 50 (TOKEN(title))"
        );
        assert_eq!(
            Provenance::ParamMax {
                param: "ids".into(),
                max: 5
            }
            .to_string(),
            "[ids MAX 5]"
        );
    }

    #[test]
    fn cardinality_classification() {
        assert!(!Provenance::Limit { count: 1 }.is_cardinality_bound());
        assert!(!Provenance::PrimaryKey { table: "t".into() }.is_cardinality_bound());
        assert!(Provenance::Cardinality {
            table: "t".into(),
            limit: 1,
            columns: vec![]
        }
        .is_cardinality_bound());
        assert!(Provenance::ParamMax {
            param: "p".into(),
            max: 1
        }
        .is_cardinality_bound());
    }
}
