//! # piql-core
//!
//! The PIQL language and scale-independent query compiler — the primary
//! contribution of *PIQL: Success-Tolerant Query Processing in the Cloud*
//! (Armbrust et al., PVLDB 5(3), 2011).
//!
//! This crate is storage-agnostic: it defines values, schemas, the PIQL
//! dialect (SQL + `PAGINATE` + `CARDINALITY LIMIT`), logical and physical
//! plans, and the two-phase optimizer that either produces a plan with a
//! static bound on the number of key/value-store operations or rejects the
//! query with actionable feedback (the Performance Insight Assistant).
//! Execution lives in `piql-engine`; the simulated store in `piql-kv`.

pub mod ast;
pub mod catalog;
pub mod codec;
pub mod opt;
pub mod parser;
pub mod plan;
pub mod text;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use opt::{Compiled, Objective, OptError, Optimizer, QueryClass};
pub use parser::{parse, parse_select, ParseError};
pub use tuple::Tuple;
pub use value::{DataType, Value, ValueRef};
