//! Runtime values and their static types.
//!
//! PIQL targets interactive web applications, so the type lattice is the
//! small one the paper's schemas need: integers, strings, booleans,
//! timestamps, and doubles. Every value is orderable within its type, which
//! is what lets the key codec ([`crate::codec::key`]) lay tuples out
//! contiguously in the ordered key/value store.

use std::cmp::Ordering;
use std::fmt;

/// Static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer (`INT`).
    Int,
    /// 64-bit signed integer (`BIGINT`).
    BigInt,
    /// Variable-length UTF-8 string with a declared maximum length
    /// (`VARCHAR(n)`). The bound feeds the predictor's tuple-size estimate.
    Varchar(u32),
    /// Boolean (`BOOL`).
    Bool,
    /// Microseconds since the epoch (`TIMESTAMP`).
    Timestamp,
    /// IEEE-754 double (`DOUBLE`). Not allowed in keys (NaN breaks total
    /// order); fine in payloads.
    Double,
}

impl DataType {
    /// Upper bound on the encoded size of a value of this type, in bytes.
    ///
    /// Used by the SLO predictor to pick the tuple-size parameter β and by
    /// the bound analyzer for `max_bytes` annotations.
    pub fn max_encoded_len(self) -> usize {
        match self {
            DataType::Int => 5,
            DataType::BigInt | DataType::Timestamp => 9,
            // worst case: every byte escaped (2x) + 2-byte terminator + tag
            DataType::Varchar(n) => 2 * n as usize + 3,
            DataType::Bool => 2,
            DataType::Double => 9,
        }
    }

    /// Whether values of this type may participate in index keys.
    pub fn key_compatible(self) -> bool {
        !matches!(self, DataType::Double)
    }

    /// Human-readable SQL-ish name.
    pub fn sql_name(self) -> String {
        match self {
            DataType::Int => "INT".into(),
            DataType::BigInt => "BIGINT".into(),
            DataType::Varchar(n) => format!("VARCHAR({n})"),
            DataType::Bool => "BOOL".into(),
            DataType::Timestamp => "TIMESTAMP".into(),
            DataType::Double => "DOUBLE".into(),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sql_name())
    }
}

/// A runtime value.
///
/// `Null` compares less than every non-null value of the same type, matching
/// the key codec's encoding (a null sorts first within its column position).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i32),
    BigInt(i64),
    Varchar(String),
    Bool(bool),
    Timestamp(i64),
    Double(f64),
}

impl Value {
    /// The dynamic type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::BigInt(_) => Some(DataType::BigInt),
            Value::Varchar(s) => Some(DataType::Varchar(s.len() as u32)),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Double(_) => Some(DataType::Double),
        }
    }

    /// Whether this value is storable in a column of type `ty`
    /// (exact type match, with `Null` allowed everywhere and integer
    /// widening `Int -> BigInt/Timestamp`).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Int) => true,
            (Value::Int(_) | Value::BigInt(_), DataType::BigInt) => true,
            (Value::Varchar(s), DataType::Varchar(n)) => s.len() <= n as usize,
            (Value::Bool(_), DataType::Bool) => true,
            (Value::Int(_) | Value::BigInt(_) | Value::Timestamp(_), DataType::Timestamp) => true,
            (Value::Double(_), DataType::Double) => true,
            _ => false,
        }
    }

    /// Coerce into the canonical representation for `ty`, widening integers.
    ///
    /// Returns `None` when the value does not conform.
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        if !self.conforms_to(ty) {
            return None;
        }
        Some(match (self, ty) {
            (Value::Int(v), DataType::BigInt) => Value::BigInt(*v as i64),
            (Value::Int(v), DataType::Timestamp) => Value::Timestamp(*v as i64),
            (Value::BigInt(v), DataType::Timestamp) => Value::Timestamp(*v),
            _ => self.clone(),
        })
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total order within one logical type; cross-type comparisons order by
    /// a fixed type rank so sorting heterogeneous data never panics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | BigInt(_) | Timestamp(_) => 2,
                Double(_) => 3,
                Varchar(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (BigInt(a), BigInt(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Int(a), BigInt(b)) => (*a as i64).cmp(b),
            (BigInt(a), Int(b)) => a.cmp(&(*b as i64)),
            (Int(a), Timestamp(b)) => (*a as i64).cmp(b),
            (Timestamp(a), Int(b)) => a.cmp(&(*b as i64)),
            (BigInt(a), Timestamp(b)) | (Timestamp(a), BigInt(b)) => a.cmp(b),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate encoded size in bytes (used for β estimates and stats).
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 5,
            Value::BigInt(_) | Value::Timestamp(_) | Value::Double(_) => 9,
            Value::Varchar(s) => s.len() + 3,
            Value::Bool(_) => 2,
        }
    }

    /// Extract a string slice, if this is a `Varchar`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    /// Extract an integral value widened to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::BigInt(v) => Some(*v as f64),
            _ => None,
        }
    }
}

/// A borrowed view of a [`Value`] — what zero-copy decoders yield.
///
/// Scalar variants are plain copies; `Varchar` borrows the underlying
/// bytes, so a codec can stream values out of an encoded buffer without
/// allocating a `String` per field (the server's point-read hot path
/// depends on this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    Null,
    Int(i32),
    BigInt(i64),
    Varchar(&'a str),
    Bool(bool),
    Timestamp(i64),
    Double(f64),
}

impl<'a> ValueRef<'a> {
    /// Borrow an owned [`Value`].
    pub fn of(value: &'a Value) -> ValueRef<'a> {
        match value {
            Value::Null => ValueRef::Null,
            Value::Int(v) => ValueRef::Int(*v),
            Value::BigInt(v) => ValueRef::BigInt(*v),
            Value::Varchar(s) => ValueRef::Varchar(s),
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Timestamp(v) => ValueRef::Timestamp(*v),
            Value::Double(d) => ValueRef::Double(*d),
        }
    }

    /// Promote to an owned [`Value`] (allocates for `Varchar`).
    pub fn to_value(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(v) => Value::Int(v),
            ValueRef::BigInt(v) => Value::BigInt(v),
            ValueRef::Varchar(s) => Value::Varchar(s.to_string()),
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Timestamp(v) => Value::Timestamp(v),
            ValueRef::Double(d) => Value::Double(d),
        }
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(value: &'a Value) -> Self {
        ValueRef::of(value)
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => (2u8, *v as i64).hash(state),
            Value::BigInt(v) | Value::Timestamp(v) => (2u8, *v).hash(state),
            Value::Varchar(s) => (4u8, s).hash(state),
            Value::Bool(b) => (1u8, b).hash(state),
            Value::Double(d) => (3u8, d.to_bits()).hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "ts:{t}"),
            Value::Double(d) => write!(f, "{d}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::BigInt(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_and_coercion() {
        assert!(Value::Int(5).conforms_to(DataType::BigInt));
        assert_eq!(
            Value::Int(5).coerce(DataType::BigInt),
            Some(Value::BigInt(5))
        );
        assert!(Value::Varchar("abc".into()).conforms_to(DataType::Varchar(3)));
        assert!(!Value::Varchar("abcd".into()).conforms_to(DataType::Varchar(3)));
        assert!(Value::Null.conforms_to(DataType::Bool));
        assert!(!Value::Bool(true).conforms_to(DataType::Int));
    }

    #[test]
    fn total_order_within_types() {
        assert_eq!(Value::Int(1).total_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(
            Value::Varchar("a".into()).total_cmp(&Value::Varchar("b".into())),
            Ordering::Less
        );
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Int(3).total_cmp(&Value::BigInt(3)), Ordering::Equal);
    }

    #[test]
    fn encoded_len_bounds_hold() {
        let v = Value::Varchar("hello".into());
        assert!(v.encoded_len() <= DataType::Varchar(5).max_encoded_len());
        assert!(Value::Int(i32::MAX).encoded_len() <= DataType::Int.max_encoded_len());
    }
}
