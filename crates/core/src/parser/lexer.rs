//! Hand-rolled lexer for PIQL text.

use std::fmt;

/// Token kinds. Keywords are case-insensitive and surface as `Keyword`.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Keyword(Kw),
    Int(i64),
    Float(f64),
    Str(String),
    /// `[1: name MAX 50]` — parsed as one token to keep the grammar simple.
    Param {
        index: Option<usize>,
        name: String,
        max: Option<u64>,
    },
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    Eof,
}

/// Recognized keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::upper_case_acronyms)]
pub enum Kw {
    Select,
    From,
    Where,
    And,
    Join,
    On,
    Order,
    Group,
    By,
    Asc,
    Desc,
    Limit,
    Paginate,
    Like,
    In,
    Is,
    Not,
    Null,
    True,
    False,
    As,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Table,
    Index,
    Primary,
    Foreign,
    Key,
    References,
    Cardinality,
    Unique,
    Max,
    Token,
    Count,
    Sum,
    Min,
    Avg,
    IntTy,
    BigIntTy,
    VarcharTy,
    BoolTy,
    TimestampTy,
    DoubleTy,
}

impl Kw {
    fn from_str(s: &str) -> Option<Kw> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Kw::Select,
            "FROM" => Kw::From,
            "WHERE" => Kw::Where,
            "AND" => Kw::And,
            "JOIN" | "INNER" => Kw::Join, // `INNER JOIN` lexes as two Join keywords
            "ON" => Kw::On,
            "ORDER" => Kw::Order,
            "GROUP" => Kw::Group,
            "BY" => Kw::By,
            "ASC" => Kw::Asc,
            "DESC" => Kw::Desc,
            "LIMIT" => Kw::Limit,
            "PAGINATE" => Kw::Paginate,
            "LIKE" => Kw::Like,
            "IN" => Kw::In,
            "IS" => Kw::Is,
            "NOT" => Kw::Not,
            "NULL" => Kw::Null,
            "TRUE" => Kw::True,
            "FALSE" => Kw::False,
            "AS" => Kw::As,
            "INSERT" => Kw::Insert,
            "INTO" => Kw::Into,
            "VALUES" => Kw::Values,
            "UPDATE" => Kw::Update,
            "SET" => Kw::Set,
            "DELETE" => Kw::Delete,
            "CREATE" => Kw::Create,
            "TABLE" => Kw::Table,
            "INDEX" => Kw::Index,
            "PRIMARY" => Kw::Primary,
            "FOREIGN" => Kw::Foreign,
            "KEY" => Kw::Key,
            "REFERENCES" => Kw::References,
            "CARDINALITY" => Kw::Cardinality,
            "UNIQUE" => Kw::Unique,
            "MAX" => Kw::Max,
            "TOKEN" => Kw::Token,
            "COUNT" => Kw::Count,
            "SUM" => Kw::Sum,
            "MIN" => Kw::Min,
            "AVG" => Kw::Avg,
            "INT" | "INTEGER" => Kw::IntTy,
            "BIGINT" => Kw::BigIntTy,
            "VARCHAR" => Kw::VarcharTy,
            "BOOL" | "BOOLEAN" => Kw::BoolTy,
            "TIMESTAMP" => Kw::TimestampTy,
            "DOUBLE" => Kw::DoubleTy,
            _ => return None,
        })
    }
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub offset: usize,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector ending with `Tok::Eof`.
pub fn lex(input: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| LexError {
        message: msg.to_string(),
        offset: at,
    };
    while i < bytes.len() {
        let c = bytes[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'.' => {
                toks.push(SpannedTok {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            b'(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    offset: start,
                });
                i += 1;
            }
            b';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                toks.push(SpannedTok {
                    tok: Tok::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(SpannedTok {
                    tok: Tok::Ne,
                    offset: start,
                });
                i += 2;
            }
            b'<' => {
                // `<=`, `<>`, `<name>` (angle-bracket parameter), or `<`
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else if let Some(j) = angle_param_end(bytes, i) {
                    // `<name>` where name is a single identifier; anything
                    // else (e.g. `a < b`) falls through to the Lt operator.
                    toks.push(SpannedTok {
                        tok: Tok::Param {
                            index: None,
                            name: input[i + 1..j].to_string(),
                            max: None,
                        },
                        offset: start,
                    });
                    i = j + 1;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'[' => {
                // `[1: name]` or `[1: name MAX 50]` or `[name]`
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err("unterminated '[param]'", start));
                }
                let inner = input[i + 1..j].trim();
                let (index, rest) = match inner.split_once(':') {
                    Some((n, rest)) => {
                        let n: usize = n
                            .trim()
                            .parse()
                            .map_err(|_| err("parameter index must be a number", start))?;
                        if n == 0 {
                            return Err(err("parameter indexes are 1-based", start));
                        }
                        (Some(n - 1), rest.trim())
                    }
                    None => (None, inner),
                };
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err("parameter needs a name", start))?
                    .to_string();
                let max = match (parts.next(), parts.next()) {
                    (None, _) => None,
                    (Some(kw), Some(n)) if kw.eq_ignore_ascii_case("max") => Some(
                        n.parse::<u64>()
                            .map_err(|_| err("MAX expects a number", start))?,
                    ),
                    _ => return Err(err("expected 'MAX n' after parameter name", start)),
                };
                toks.push(SpannedTok {
                    tok: Tok::Param { index, name, max },
                    offset: start,
                });
                i = j + 1;
            }
            b'\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(err("unterminated string literal", start));
                    }
                    if bytes[j] == b'\'' {
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    // copy one UTF-8 scalar
                    let ch_len = utf8_len(bytes[j]);
                    s.push_str(&input[j..j + ch_len]);
                    j += ch_len;
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == b'.'
                            && bytes
                                .get(j + 1)
                                .map(|b| b.is_ascii_digit())
                                .unwrap_or(false)))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| err("bad float literal", start))?)
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err("integer literal too large", start))?,
                    )
                };
                toks.push(SpannedTok { tok, offset: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &input[i..j];
                let tok = match Kw::from_str(word) {
                    Some(kw) => Tok::Keyword(kw),
                    None => Tok::Ident(word.to_string()),
                };
                toks.push(SpannedTok { tok, offset: start });
                i = j;
            }
            _ => return Err(err(&format!("unexpected character '{}'", c as char), start)),
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        offset: input.len(),
    });
    Ok(toks)
}

/// If `bytes[start] == b'<'` begins a `<ident>` parameter, return the index
/// of the closing `>`; otherwise `None` (it is a less-than operator).
fn angle_param_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if !bytes
        .get(j)
        .map(|b| b.is_ascii_alphabetic() || *b == b'_')?
    {
        return None;
    }
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    (bytes.get(j) == Some(&b'>') && j > start + 1).then_some(j)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let toks = kinds("SELECT * FROM t WHERE a = 1");
        assert_eq!(
            toks,
            vec![
                Tok::Keyword(Kw::Select),
                Tok::Star,
                Tok::Keyword(Kw::From),
                Tok::Ident("t".into()),
                Tok::Keyword(Kw::Where),
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn params_both_styles() {
        let toks = kinds("owner = <uname> AND x IN [2: friends MAX 50]");
        assert!(toks.contains(&Tok::Param {
            index: None,
            name: "uname".into(),
            max: None
        }));
        assert!(toks.contains(&Tok::Param {
            index: Some(1),
            name: "friends".into(),
            max: Some(50)
        }));
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = kinds("-- comment\n'it''s' <= 2.5");
        assert_eq!(
            toks,
            vec![Tok::Str("it's".into()), Tok::Le, Tok::Float(2.5), Tok::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <> b != c < d > e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ne,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Lt,
                Tok::Ident("d".into()),
                Tok::Gt,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn less_than_column_is_not_a_param() {
        assert_eq!(
            kinds("a < b AND c > 1"),
            vec![
                Tok::Ident("a".into()),
                Tok::Lt,
                Tok::Ident("b".into()),
                Tok::Keyword(Kw::And),
                Tok::Ident("c".into()),
                Tok::Gt,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let e = lex("a = 'oops").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(lex("a = [x MAX]").is_err());
    }
}
