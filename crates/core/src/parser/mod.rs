//! The PIQL parser: a hand-rolled recursive-descent parser over
//! [`lexer::lex`]'s token stream.
//!
//! Grammar (informal):
//! ```text
//! statement   := select | insert | update | delete | create_table | create_index
//! select      := SELECT items FROM table_ref join* [WHERE conj]
//!                [GROUP BY cols] [ORDER BY order_items] [LIMIT n | PAGINATE n]
//! join        := JOIN table_ref [ON conj]
//! conj        := predicate (AND predicate)*
//! predicate   := col (=|<>|<|<=|>|>=) scalar
//!              | col LIKE scalar | col IN in_list | col IS [NOT] NULL
//! scalar      := literal | param | col
//! param       := '[' [n ':'] name ['MAX' n] ']'  |  '<' name '>'
//! create_table:= CREATE TABLE name '(' column_def* table_constraint* ')'
//! table_constraint := PRIMARY KEY '(' cols ')'
//!                  | FOREIGN KEY '(' cols ')' REFERENCES table
//!                  | CARDINALITY LIMIT n '(' cols ')'
//! create_index:= CREATE INDEX name ON table '(' index_part (',' index_part)* ')'
//! index_part  := col [ASC|DESC] | TOKEN '(' col ')'
//! ```

pub mod lexer;

use crate::ast::*;
use crate::catalog::{CardinalityConstraint, ForeignKey, IndexKeyPart};
use crate::codec::key::Dir;
use crate::value::{DataType, Value};
use lexer::{lex, Kw, SpannedTok, Tok};
use std::fmt;

/// Parse errors with a byte offset into the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<lexer::LexError> for ParseError {
    fn from(e: lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a single statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        next_param_index: 0,
    };
    let stmt = p.statement()?;
    p.eat_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a SELECT, failing on any other statement kind.
pub fn parse_select(input: &str) -> Result<SelectStmt, ParseError> {
    match parse(input)? {
        Statement::Select(s) => Ok(s),
        _ => Err(ParseError {
            message: "expected a SELECT statement".into(),
            offset: 0,
        }),
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Auto-assigned indexes for `<name>`-style parameters without explicit
    /// positions; repeated names share one index.
    next_param_index: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek() == &Tok::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw:?}, found {:?}", self.peek()))
        }
    }

    fn eat_tok(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat_tok(t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn eat_semicolons(&mut self) {
        while self.eat_tok(&Tok::Semicolon) {}
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        // Several keywords double as common column names (`timestamp`,
        // `key`, `count`, `token`, ...); accept them as identifiers in
        // identifier position.
        let contextual = |kw: Kw| -> Option<&'static str> {
            Some(match kw {
                Kw::Key => "key",
                Kw::Count => "count",
                Kw::Sum => "sum",
                Kw::Min => "min",
                Kw::Max => "max",
                Kw::Avg => "avg",
                Kw::Token => "token",
                Kw::TimestampTy => "timestamp",
                _ => return None,
            })
        };
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Keyword(kw) if contextual(kw).is_some() => {
                self.bump();
                Ok(contextual(kw).unwrap().into())
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Tok::Keyword(Kw::Select) => Ok(Statement::Select(self.select()?)),
            Tok::Keyword(Kw::Insert) => Ok(Statement::Insert(self.insert()?)),
            Tok::Keyword(Kw::Update) => Ok(Statement::Update(self.update()?)),
            Tok::Keyword(Kw::Delete) => Ok(Statement::Delete(self.delete()?)),
            Tok::Keyword(Kw::Create) => self.create(),
            other => self.err(format!("expected a statement, found {other:?}")),
        }
    }

    // ---------------------------------------------------------- SELECT

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw(Kw::Select)?;
        let projection = self.select_items()?;
        self.expect_kw(Kw::From)?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            // comma-style (`FROM item, author` — the paper's §5.3 query) and
            // explicit JOIN are both accepted; conditions may live in ON or
            // in the WHERE clause.
            if self.eat_tok(&Tok::Comma) {
                joins.push(Join {
                    table: self.table_ref()?,
                    on: Vec::new(),
                });
            } else if self.eat_kw(Kw::Join) {
                // `INNER JOIN` lexes as two Join keywords
                self.eat_kw(Kw::Join);
                let table = self.table_ref()?;
                let on = if self.eat_kw(Kw::On) {
                    self.conjunction()?
                } else {
                    Vec::new()
                };
                joins.push(Join { table, on });
            } else {
                break;
            }
        }
        let filter = if self.eat_kw(Kw::Where) {
            self.conjunction()?
        } else {
            Vec::new()
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let column = self.column_ref()?;
                let dir = if self.eat_kw(Kw::Desc) {
                    Dir::Desc
                } else {
                    self.eat_kw(Kw::Asc);
                    Dir::Asc
                };
                order_by.push(OrderByItem { column, dir });
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
        }
        let bound = if self.eat_kw(Kw::Limit) {
            Some(RowBound::Limit(self.positive_int()?))
        } else if self.eat_kw(Kw::Paginate) {
            Some(RowBound::Paginate(self.positive_int()?))
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            from,
            joins,
            filter,
            group_by,
            order_by,
            bound,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_tok(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // aggregate?
        if let Tok::Keyword(kw @ (Kw::Count | Kw::Sum | Kw::Min | Kw::Max | Kw::Avg)) =
            self.peek().clone()
        {
            // MAX is also the param keyword; only treat as aggregate if '('
            if self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::LParen) {
                self.bump();
                self.expect_tok(&Tok::LParen)?;
                let func = match kw {
                    Kw::Count => AggFunc::Count,
                    Kw::Sum => AggFunc::Sum,
                    Kw::Min => AggFunc::Min,
                    Kw::Max => AggFunc::Max,
                    Kw::Avg => AggFunc::Avg,
                    _ => unreachable!(),
                };
                let arg = if self.eat_tok(&Tok::Star) {
                    if func != AggFunc::Count {
                        return self.err("only COUNT may take '*'");
                    }
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect_tok(&Tok::RParen)?;
                let alias = self.optional_alias()?;
                return Ok(SelectItem::Aggregate(AggregateExpr { func, arg, alias }));
            }
        }
        // `alias.*` or plain column
        let first = self.ident()?;
        if self.eat_tok(&Tok::Dot) {
            if self.eat_tok(&Tok::Star) {
                return Ok(SelectItem::QualifiedWildcard(first));
            }
            let column = self.ident()?;
            let alias = self.optional_alias()?;
            return Ok(SelectItem::Column {
                column: ColumnRef {
                    qualifier: Some(first),
                    column,
                },
                alias,
            });
        }
        let alias = self.optional_alias()?;
        Ok(SelectItem::Column {
            column: ColumnRef {
                qualifier: None,
                column: first,
            },
            alias,
        })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw(Kw::As) {
            return Ok(Some(self.ident()?));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let alias = match self.peek() {
            Tok::Ident(_) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat_tok(&Tok::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn conjunction(&mut self) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = vec![self.predicate()?];
        while self.eat_kw(Kw::And) {
            preds.push(self.predicate()?);
        }
        Ok(preds)
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let column = self.column_ref()?;
        match self.peek().clone() {
            Tok::Eq => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Eq,
                    right: self.scalar()?,
                })
            }
            Tok::Ne => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Ne,
                    right: self.scalar()?,
                })
            }
            Tok::Lt => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Lt,
                    right: self.scalar()?,
                })
            }
            Tok::Le => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Le,
                    right: self.scalar()?,
                })
            }
            Tok::Gt => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Gt,
                    right: self.scalar()?,
                })
            }
            Tok::Ge => {
                self.bump();
                Ok(Predicate::Compare {
                    left: column,
                    op: CompareOp::Ge,
                    right: self.scalar()?,
                })
            }
            Tok::Keyword(Kw::Like) => {
                self.bump();
                Ok(Predicate::Like {
                    column,
                    pattern: self.scalar()?,
                })
            }
            Tok::Keyword(Kw::In) => {
                self.bump();
                let list = if self.eat_tok(&Tok::LParen) {
                    let mut vals = Vec::new();
                    loop {
                        vals.push(self.literal()?);
                        if !self.eat_tok(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect_tok(&Tok::RParen)?;
                    InList::Values(vals)
                } else {
                    match self.scalar()? {
                        ScalarExpr::Param(p) => InList::Param(p),
                        _ => return self.err("IN expects a literal list or a parameter"),
                    }
                };
                Ok(Predicate::In { column, list })
            }
            Tok::Keyword(Kw::Is) => {
                self.bump();
                let negated = self.eat_kw(Kw::Not);
                self.expect_kw(Kw::Null)?;
                Ok(Predicate::IsNull { column, negated })
            }
            other => self.err(format!("expected a predicate operator, found {other:?}")),
        }
    }

    fn scalar(&mut self) -> Result<ScalarExpr, ParseError> {
        match self.peek().clone() {
            Tok::Param { index, name, max } => {
                self.bump();
                let index = match index {
                    Some(i) => {
                        self.next_param_index = self.next_param_index.max(i + 1);
                        i
                    }
                    None => {
                        let i = self.next_param_index;
                        self.next_param_index += 1;
                        i
                    }
                };
                Ok(ScalarExpr::Param(Param {
                    index,
                    name,
                    max_cardinality: max,
                }))
            }
            Tok::Ident(_) => Ok(ScalarExpr::Column(self.column_ref()?)),
            _ => Ok(ScalarExpr::Literal(self.literal()?)),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
                Value::Int(v as i32)
            } else {
                Value::BigInt(v)
            }),
            Tok::Float(v) => Ok(Value::Double(v)),
            Tok::Str(s) => Ok(Value::Varchar(s)),
            Tok::Keyword(Kw::True) => Ok(Value::Bool(true)),
            Tok::Keyword(Kw::False) => Ok(Value::Bool(false)),
            Tok::Keyword(Kw::Null) => Ok(Value::Null),
            other => self.err(format!("expected a literal, found {other:?}")),
        }
    }

    fn positive_int(&mut self) -> Result<u64, ParseError> {
        match self.bump() {
            Tok::Int(v) if v > 0 => Ok(v as u64),
            other => self.err(format!("expected a positive integer, found {other:?}")),
        }
    }

    // ---------------------------------------------------------- DML writes

    fn insert(&mut self) -> Result<InsertStmt, ParseError> {
        self.expect_kw(Kw::Insert)?;
        self.expect_kw(Kw::Into)?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_tok(&Tok::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_tok(&Tok::Comma) {
                    break;
                }
            }
            self.expect_tok(&Tok::RParen)?;
        }
        self.expect_kw(Kw::Values)?;
        self.expect_tok(&Tok::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.scalar()?);
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(InsertStmt {
            table,
            columns,
            values,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt, ParseError> {
        self.expect_kw(Kw::Update)?;
        let table = self.ident()?;
        self.expect_kw(Kw::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_tok(&Tok::Eq)?;
            assignments.push((col, self.scalar()?));
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Kw::Where) {
            self.conjunction()?
        } else {
            Vec::new()
        };
        Ok(UpdateStmt {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<DeleteStmt, ParseError> {
        self.expect_kw(Kw::Delete)?;
        self.expect_kw(Kw::From)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(Kw::Where) {
            self.conjunction()?
        } else {
            Vec::new()
        };
        Ok(DeleteStmt { table, filter })
    }

    // ---------------------------------------------------------- DDL

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw(Kw::Create)?;
        if self.eat_kw(Kw::Table) {
            return Ok(Statement::CreateTable(self.create_table()?));
        }
        if self.eat_kw(Kw::Index) {
            return Ok(Statement::CreateIndex(self.create_index()?));
        }
        self.err("expected TABLE or INDEX after CREATE")
    }

    fn create_table(&mut self) -> Result<CreateTableStmt, ParseError> {
        let name = self.ident()?;
        self.expect_tok(&Tok::LParen)?;
        let mut stmt = CreateTableStmt {
            name,
            columns: Vec::new(),
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            cardinality_constraints: Vec::new(),
        };
        loop {
            match self.peek().clone() {
                Tok::Keyword(Kw::Primary) => {
                    self.bump();
                    self.expect_kw(Kw::Key)?;
                    stmt.primary_key = self.paren_ident_list()?;
                }
                Tok::Keyword(Kw::Foreign) => {
                    self.bump();
                    self.expect_kw(Kw::Key)?;
                    let columns = self.paren_ident_list()?;
                    self.expect_kw(Kw::References)?;
                    let ref_table = self.ident()?;
                    // optional parenthesized referenced columns (must be pk)
                    if self.peek() == &Tok::LParen {
                        let _ = self.paren_ident_list()?;
                    }
                    stmt.foreign_keys.push(ForeignKey { columns, ref_table });
                }
                Tok::Keyword(Kw::Cardinality) => {
                    self.bump();
                    self.expect_kw(Kw::Limit)?;
                    let limit = self.positive_int()?;
                    // columns may be plain or TOKEN(col)
                    self.expect_tok(&Tok::LParen)?;
                    let mut columns = Vec::new();
                    loop {
                        if self.peek() == &Tok::Keyword(Kw::Token)
                            && self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::LParen)
                        {
                            self.bump();
                            self.expect_tok(&Tok::LParen)?;
                            let col = self.ident()?;
                            self.expect_tok(&Tok::RParen)?;
                            columns.push(format!("{}{col}", CardinalityConstraint::TOKEN_PREFIX));
                        } else {
                            columns.push(self.ident()?);
                        }
                        if !self.eat_tok(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect_tok(&Tok::RParen)?;
                    stmt.cardinality_constraints
                        .push(CardinalityConstraint { limit, columns });
                }
                _ => {
                    let col = self.ident()?;
                    let ty = self.data_type()?;
                    let mut nullable = true;
                    if self.eat_kw(Kw::Not) {
                        self.expect_kw(Kw::Null)?;
                        nullable = false;
                    }
                    stmt.columns.push((col, ty, nullable));
                }
            }
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(stmt)
    }

    fn create_index(&mut self) -> Result<CreateIndexStmt, ParseError> {
        let name = self.ident()?;
        self.expect_kw(Kw::On)?;
        let table = self.ident()?;
        self.expect_tok(&Tok::LParen)?;
        let mut parts = Vec::new();
        loop {
            if self.eat_kw(Kw::Token) {
                self.expect_tok(&Tok::LParen)?;
                let col = self.ident()?;
                self.expect_tok(&Tok::RParen)?;
                parts.push(IndexKeyPart::token(col));
            } else {
                let col = self.ident()?;
                let part = if self.eat_kw(Kw::Desc) {
                    IndexKeyPart::desc(col)
                } else {
                    self.eat_kw(Kw::Asc);
                    IndexKeyPart::asc(col)
                };
                parts.push(part);
            }
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(CreateIndexStmt { name, table, parts })
    }

    fn paren_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_tok(&Tok::LParen)?;
        let mut idents = Vec::new();
        loop {
            idents.push(self.ident()?);
            if !self.eat_tok(&Tok::Comma) {
                break;
            }
        }
        self.expect_tok(&Tok::RParen)?;
        Ok(idents)
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        match self.bump() {
            Tok::Keyword(Kw::IntTy) => Ok(DataType::Int),
            Tok::Keyword(Kw::BigIntTy) => Ok(DataType::BigInt),
            Tok::Keyword(Kw::BoolTy) => Ok(DataType::Bool),
            Tok::Keyword(Kw::TimestampTy) => Ok(DataType::Timestamp),
            Tok::Keyword(Kw::DoubleTy) => Ok(DataType::Double),
            Tok::Keyword(Kw::VarcharTy) => {
                self.expect_tok(&Tok::LParen)?;
                let n = self.positive_int()?;
                self.expect_tok(&Tok::RParen)?;
                Ok(DataType::Varchar(n as u32))
            }
            other => self.err(format!("expected a data type, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_thoughtstream_query() {
        // The exact query from Figure 3(a).
        let q = parse_select(
            "SELECT thoughts.* \
             FROM subscriptions s JOIN thoughts t \
             WHERE t.owner = s.target \
               AND s.owner = <uname> \
               AND s.approved = true \
             ORDER BY t.timestamp DESC \
             LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.filter.len(), 3);
        assert_eq!(q.order_by[0].dir, Dir::Desc);
        assert_eq!(q.bound, Some(RowBound::Limit(10)));
        assert!(matches!(
            q.projection[0],
            SelectItem::QualifiedWildcard(ref w) if w == "thoughts"
        ));
    }

    #[test]
    fn parses_tpcw_search_by_title() {
        // The exact query from §5.3 (comma-style join).
        let q = parse_select(
            "SELECT I_TITLE, I_ID, A_FNAME, A_LNAME \
             FROM ITEM, AUTHOR \
             WHERE I_A_ID = A_ID AND I_TITLE LIKE [1: titleWord] \
             ORDER BY I_TITLE LIMIT 50",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.bound, Some(RowBound::Limit(50)));
        assert!(matches!(q.filter[1], Predicate::Like { .. }));
    }

    #[test]
    fn parses_paginate_and_in_param() {
        let q = parse_select(
            "SELECT * FROM subscriptions \
             WHERE target = <target_user> AND owner IN [2: friends MAX 50] \
             PAGINATE 25",
        )
        .unwrap();
        assert_eq!(q.bound, Some(RowBound::Paginate(25)));
        match &q.filter[1] {
            Predicate::In {
                list: InList::Param(p),
                ..
            } => {
                assert_eq!(p.max_cardinality, Some(50));
                assert_eq!(p.index, 1);
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn angle_params_are_indexed_in_order() {
        let q = parse_select("SELECT * FROM t WHERE a = <p1> AND b = <p2>").unwrap();
        let idx: Vec<usize> = q
            .filter
            .iter()
            .map(|p| match p {
                Predicate::Compare {
                    right: ScalarExpr::Param(p),
                    ..
                } => p.index,
                _ => panic!(),
            })
            .collect();
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn parses_create_table_with_cardinality_limit() {
        // The exact DDL from §4.2.
        let s = parse(
            "CREATE TABLE Subscriptions ( \
               ownerUserId INT, \
               targetUserId INT, \
               approved BOOL, \
               PRIMARY KEY (ownerUserId, targetUserId), \
               CARDINALITY LIMIT 100 (ownerUserId) \
             )",
        )
        .unwrap();
        match s {
            Statement::CreateTable(t) => {
                assert_eq!(t.columns.len(), 3);
                assert_eq!(t.primary_key, vec!["ownerUserId", "targetUserId"]);
                assert_eq!(t.cardinality_constraints[0].limit, 100);
                assert_eq!(t.cardinality_constraints[0].columns, vec!["ownerUserId"]);
            }
            _ => panic!("expected CREATE TABLE"),
        }
    }

    #[test]
    fn parses_create_index_with_token() {
        let s = parse("CREATE INDEX idx_title ON items (TOKEN(i_title), i_title, i_id)").unwrap();
        match s {
            Statement::CreateIndex(i) => {
                assert_eq!(i.parts.len(), 3);
                assert!(i.parts[0].kind.is_token());
            }
            _ => panic!("expected CREATE INDEX"),
        }
    }

    #[test]
    fn parses_dml_writes() {
        let s = parse("INSERT INTO thoughts (owner, ts, text) VALUES (<u>, <t>, <txt>)").unwrap();
        assert!(matches!(s, Statement::Insert(_)));
        let s = parse("UPDATE users SET home_town = 'SF' WHERE username = <u>").unwrap();
        assert!(matches!(s, Statement::Update(_)));
        let s = parse("DELETE FROM carts WHERE cart_id = <c>").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_select(
            "SELECT owner, COUNT(*) AS n FROM order_lines \
             WHERE order_id = <o> GROUP BY owner LIMIT 10",
        )
        .unwrap();
        assert!(matches!(
            q.projection[1],
            SelectItem::Aggregate(AggregateExpr {
                func: AggFunc::Count,
                arg: None,
                ..
            })
        ));
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn errors_are_positioned() {
        let e = parse("SELECT FROM t").unwrap_err();
        assert!(e.offset >= 7);
        assert!(parse("SELECT * FROM t LIMIT 0").is_err());
        assert!(parse("SELECT * FROM t WHERE a").is_err());
    }
}
