//! Ranked lock wrappers: `Mutex`, `RwLock`, and `Condvar`.
//!
//! Every lock is constructed with a rank from [`crate::rank`] and a static
//! name. In a default build the wrappers are thin pass-throughs over
//! `std::sync` (poison-ignoring, like the workspace `parking_lot` shim) and
//! carry no bookkeeping at all. With the `lock-order` feature enabled, each
//! thread tracks the ranks it currently holds, and acquiring a lock whose
//! rank is not strictly greater than everything already held panics with
//! the acquisition backtraces of both locks involved.
//!
//! Backtrace capture honours `RUST_BACKTRACE` — run checked builds with
//! `RUST_BACKTRACE=1` to get the "earlier acquisition" trace resolved; the
//! panic message always names both locks and ranks either way.
//!
//! [`Condvar::wait`] releases the mutex's rank for the duration of the wait
//! (the thread does not hold the lock while parked) and re-registers it,
//! re-checking the ordering, when the wait returns.

// In default builds `Meta` is `()`, so the tracking shims take a unit —
// the price of keeping the wrapper bodies free of cfg branches.
#![allow(clippy::unit_arg)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as sys;
use std::time::Duration;

pub use sys::WaitTimeoutResult;

#[cfg(feature = "lock-order")]
type Meta = tracking::LockMeta;
#[cfg(not(feature = "lock-order"))]
type Meta = ();

#[cfg(feature = "lock-order")]
fn meta(rank: u32, name: &'static str) -> Meta {
    tracking::LockMeta { rank, name }
}
#[cfg(not(feature = "lock-order"))]
fn meta(_rank: u32, _name: &'static str) -> Meta {}

#[cfg(feature = "lock-order")]
mod tracking {
    use std::backtrace::Backtrace;
    use std::cell::RefCell;

    #[derive(Clone, Copy)]
    pub(super) struct LockMeta {
        pub rank: u32,
        pub name: &'static str,
    }

    struct Held {
        rank: u32,
        name: &'static str,
        backtrace: Backtrace,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Register an acquisition, panicking if `m.rank` does not strictly
    /// exceed every rank this thread already holds.
    pub(super) fn acquire(m: LockMeta) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            if let Some(worst) = held.iter().max_by_key(|h| h.rank) {
                if worst.rank >= m.rank {
                    let here = Backtrace::capture();
                    panic!(
                        "lock-order violation: acquiring \"{new}\" (rank {new_rank}) while \
                         \"{old}\" (rank {old_rank}) is held by this thread; ranks must be \
                         strictly increasing in acquisition order (see piql_analysis::rank)\n\
                         ---- earlier acquisition of \"{old}\" ----\n{old_bt}\n\
                         ---- this acquisition of \"{new}\" ----\n{here}",
                        new = m.name,
                        new_rank = m.rank,
                        old = worst.name,
                        old_rank = worst.rank,
                        old_bt = worst.backtrace,
                    );
                }
            }
            held.push(Held {
                rank: m.rank,
                name: m.name,
                backtrace: Backtrace::capture(),
            });
        });
    }

    /// Deregister the most recent acquisition of `m` on this thread.
    pub(super) fn release(m: LockMeta) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|h| h.rank == m.rank && std::ptr::eq(h.name, m.name))
            {
                held.remove(pos);
            }
        });
    }
}

#[cfg(not(feature = "lock-order"))]
mod tracking {
    #[inline(always)]
    pub(super) fn acquire(_m: ()) {}
    #[inline(always)]
    pub(super) fn release(_m: ()) {}
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A ranked mutex. Pass-through over `std::sync::Mutex` unless the
/// `lock-order` feature is enabled.
pub struct Mutex<T: ?Sized> {
    meta: Meta,
    inner: sys::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Mutex {
            meta: meta(rank, name),
            inner: sys::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, ignoring poison (a panicking holder does not
    /// invalidate the data for this workspace's usage, matching the
    /// `parking_lot` shim semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        tracking::acquire(self.meta);
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(sys::PoisonError::into_inner);
        MutexGuard {
            meta: self.meta,
            inner: Some(inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

/// Guard for [`Mutex`]. Wraps the std guard so [`Condvar::wait`] can take
/// ownership of the underlying lock for the duration of a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    meta: Meta,
    inner: Option<sys::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            tracking::release(self.meta);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with ranked [`Mutex`]es. While a thread is
/// parked in `wait`, the mutex's rank is removed from its held set (the
/// lock genuinely is released); it is re-registered — re-checking the
/// ordering — when the wait returns.
#[derive(Default)]
pub struct Condvar {
    inner: sys::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: sys::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let inner = guard.inner.take().expect("guard holds the lock");
        tracking::release(guard.meta);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sys::PoisonError::into_inner);
        tracking::acquire(guard.meta);
        guard.inner = Some(inner);
        guard
    }

    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let inner = guard.inner.take().expect("guard holds the lock");
        tracking::release(guard.meta);
        let (inner, timeout) = self
            .inner
            .wait_timeout(inner, dur)
            .unwrap_or_else(sys::PoisonError::into_inner);
        tracking::acquire(guard.meta);
        guard.inner = Some(inner);
        (guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A ranked reader-writer lock. Read and write acquisitions are tracked
/// identically: even a shared acquisition participates in the global order.
pub struct RwLock<T: ?Sized> {
    meta: Meta,
    inner: sys::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        RwLock {
            meta: meta(rank, name),
            inner: sys::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        tracking::acquire(self.meta);
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sys::PoisonError::into_inner);
        RwLockReadGuard {
            meta: self.meta,
            inner,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        tracking::acquire(self.meta);
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sys::PoisonError::into_inner);
        RwLockWriteGuard {
            meta: self.meta,
            inner,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    meta: Meta,
    inner: sys::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        tracking::release(self.meta);
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    meta: Meta,
    inner: sys::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        tracking::release(self.meta);
    }
}
