//! Regression models for the two concurrency bugs this workspace has
//! actually shipped. Each model is the locking skeleton of the real
//! algorithm, small enough for [`crate::check::explore`] to enumerate
//! every schedule, and carries a `fix_enabled` switch: with the fix
//! reverted the explorer finds the historical race; with it in place every
//! schedule passes. The paired tests live in `tests/models.rs`.

use crate::check::{Model, ModelCondvar, ModelMutex, Step};

// ---------------------------------------------------------------------------
// PR 5: RoundPool condvar baton-pass race
// ---------------------------------------------------------------------------

/// The RoundPool submit/worker handoff (`crates/kv/src/pool.rs`).
///
/// A submitter pushes two tasks, calling `notify_one` after each. Two
/// workers pop tasks; a worker that pops then runs its task for a long
/// time (modelled as exiting). The historical bug: both notifications can
/// land on the same parked worker — a condvar permits a signalled-but-not-
/// yet-awake thread to absorb further signals — so the second task strands
/// while the other worker parks forever. The fix is the baton pass: a
/// worker that pops a task while the queue is still non-empty re-notifies
/// before running, handing the baton to a genuinely unsignalled waiter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatonPassModel {
    /// `true` = current code (pop re-notifies when queue stays non-empty);
    /// `false` = the pre-PR 5 worker loop.
    pub fix_enabled: bool,
    queue: u8,
    tasks_run: u8,
    mutex: ModelMutex,
    cv: ModelCondvar,
    submitter_pc: u8,
    worker_pc: [u8; 2],
}

/// Thread ids: 0 = submitter, 1..=2 = workers.
impl BatonPassModel {
    pub fn new(fix_enabled: bool) -> Self {
        BatonPassModel {
            fix_enabled,
            queue: 0,
            tasks_run: 0,
            mutex: ModelMutex::default(),
            cv: ModelCondvar::default(),
            submitter_pc: 0,
            worker_pc: [0, 0],
        }
    }

    fn step_submitter(&mut self) -> Step {
        match self.submitter_pc {
            // Two rounds of: lock, push, unlock, notify_one.
            0 | 3 => {
                if !self.mutex.acquire(0) {
                    return Step::Blocked;
                }
                self.submitter_pc += 1;
                Step::Ran
            }
            1 | 4 => {
                self.queue += 1;
                self.mutex.release(0);
                self.submitter_pc += 1;
                Step::Ran
            }
            2 | 5 => {
                self.cv.notify_one();
                self.submitter_pc += 1;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn step_worker(&mut self, w: usize) -> Step {
        let tid = w + 1;
        match self.worker_pc[w] {
            0 => {
                if !self.mutex.acquire(tid) {
                    return Step::Blocked;
                }
                self.worker_pc[w] = 1;
                Step::Ran
            }
            // Holding the queue lock: pop or park.
            1 => {
                if self.queue > 0 {
                    self.queue -= 1;
                    if self.fix_enabled && self.queue > 0 {
                        // Baton pass: more work remains and this worker is
                        // about to go run a task, so wake a peer now.
                        self.cv.notify_one();
                    }
                    self.mutex.release(tid);
                    self.worker_pc[w] = 2;
                } else {
                    self.cv.enter_wait(tid);
                    self.mutex.release(tid);
                    self.worker_pc[w] = 3;
                }
                Step::Ran
            }
            // Run the task (outside the lock); the task is long, so the
            // worker contributes nothing further to the handoff.
            2 => {
                self.tasks_run += 1;
                self.worker_pc[w] = 5;
                Step::Ran
            }
            // Parked: wake only on a signal addressed to us.
            3 => {
                if !self.cv.take_signal(tid) {
                    return Step::Blocked;
                }
                self.worker_pc[w] = 4;
                Step::Ran
            }
            // Awake: re-acquire the lock and re-check the queue.
            4 => {
                if !self.mutex.acquire(tid) {
                    return Step::Blocked;
                }
                self.worker_pc[w] = 1;
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Model for BatonPassModel {
    fn threads(&self) -> usize {
        3
    }

    fn step(&mut self, tid: usize) -> Step {
        match tid {
            0 => self.step_submitter(),
            w => self.step_worker(w - 1),
        }
    }

    fn on_stuck(&self) -> Result<(), String> {
        if self.queue > 0 {
            Err(format!(
                "lost wakeup: {} task(s) queued while every remaining worker parks \
                 (ran {} of 2)",
                self.queue, self.tasks_run
            ))
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// PR 6: WAL rotation vs. group commit
// ---------------------------------------------------------------------------

/// The WAL group-commit/rotation interaction (`crates/durability/src/wal.rs`).
///
/// Appenders stage records in `pending` and block until the durable
/// watermark covers their LSN. The committer drains the staged chunk and
/// writes+fsyncs it under `sink`. `rotate_to` drains whatever is staged,
/// syncs it, starts a new segment, and publishes `durable = appended` —
/// all while holding `pending`.
///
/// The historical bug: the committer released `pending` *before* acquiring
/// `sink`. In that window rotation could run in full — sealing the old
/// segment and publishing a durable watermark that covered the chunk still
/// sitting in the committer's memory. A crash then loses acknowledged
/// records, and the late chunk lands in the wrong segment at the wrong
/// offsets. The fix: the committer acquires `sink` while still holding
/// `pending`, so a rotation can never overtake an in-flight chunk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WalRotationModel {
    /// `true` = current code (committer takes `sink` before releasing
    /// `pending`); `false` = the pre-review PR 6 committer.
    pub fix_enabled: bool,
    pending: ModelMutex,
    sink: ModelMutex,
    /// Staged records (LSNs; each record is one offset unit).
    buf: Vec<u64>,
    /// LSN high-water mark of appended records.
    appended: u64,
    /// Synced on-disk records, per segment, in write order.
    segments: Vec<Vec<u64>>,
    /// Published durable watermark.
    durable: u64,
    appender_pc: [u8; 2],
    appender_lsn: [u64; 2],
    committer_pc: u8,
    committer_chunk: Vec<u64>,
    committer_target: u64,
    rotator_pc: u8,
}

/// Thread ids: 0..=1 = appenders, 2 = committer, 3 = rotator.
impl WalRotationModel {
    pub fn new(fix_enabled: bool) -> Self {
        WalRotationModel {
            fix_enabled,
            pending: ModelMutex::default(),
            sink: ModelMutex::default(),
            buf: Vec::new(),
            appended: 0,
            segments: vec![Vec::new()],
            durable: 0,
            appender_pc: [0, 0],
            appender_lsn: [0, 0],
            committer_pc: 0,
            committer_chunk: Vec::new(),
            committer_target: 0,
            rotator_pc: 0,
        }
    }

    fn step_appender(&mut self, a: usize) -> Step {
        let tid = a;
        match self.appender_pc[a] {
            0 => {
                if !self.pending.acquire(tid) {
                    return Step::Blocked;
                }
                self.appender_pc[a] = 1;
                Step::Ran
            }
            // append() under `pending`, then commit() waits for durability.
            1 => {
                self.appended += 1;
                self.appender_lsn[a] = self.appended;
                self.buf.push(self.appended);
                self.pending.release(tid);
                self.appender_pc[a] = 2;
                Step::Ran
            }
            2 => {
                if self.durable < self.appender_lsn[a] {
                    return Step::Blocked;
                }
                self.appender_pc[a] = 3;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    /// One committer iteration: drain the staged chunk, write+sync it,
    /// publish the watermark.
    fn step_committer(&mut self) -> Step {
        let tid = 2;
        match self.committer_pc {
            0 => {
                if self.buf.is_empty() || !self.pending.acquire(tid) {
                    return Step::Blocked;
                }
                self.committer_pc = 1;
                Step::Ran
            }
            1 => {
                if self.fix_enabled {
                    // Fix: take `sink` while still holding `pending`.
                    if !self.sink.acquire(tid) {
                        return Step::Blocked;
                    }
                    self.committer_chunk = std::mem::take(&mut self.buf);
                    self.committer_target = self.appended;
                    self.pending.release(tid);
                    self.committer_pc = 3;
                } else {
                    // Bug: release `pending` with the chunk only in memory;
                    // rotation can now run before we reach `sink`.
                    self.committer_chunk = std::mem::take(&mut self.buf);
                    self.committer_target = self.appended;
                    self.pending.release(tid);
                    self.committer_pc = 2;
                }
                Step::Ran
            }
            2 => {
                if !self.sink.acquire(tid) {
                    return Step::Blocked;
                }
                self.committer_pc = 3;
                Step::Ran
            }
            // Write + fsync the chunk into the current segment.
            3 => {
                let seg = self.segments.last_mut().expect("segment list nonempty");
                seg.append(&mut self.committer_chunk);
                self.sink.release(tid);
                self.committer_pc = 4;
                Step::Ran
            }
            4 => {
                self.durable = self.durable.max(self.committer_target);
                self.committer_pc = 5;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    /// `rotate_to`: drain + sync staged records, seal the segment, publish
    /// the watermark — all while holding `pending`.
    fn step_rotator(&mut self) -> Step {
        let tid = 3;
        match self.rotator_pc {
            0 => {
                if !self.pending.acquire(tid) {
                    return Step::Blocked;
                }
                self.rotator_pc = 1;
                Step::Ran
            }
            1 => {
                if !self.sink.acquire(tid) {
                    return Step::Blocked;
                }
                let mut chunk = std::mem::take(&mut self.buf);
                let seg = self.segments.last_mut().expect("segment list nonempty");
                seg.append(&mut chunk);
                self.segments.push(Vec::new());
                self.sink.release(tid);
                self.rotator_pc = 2;
                Step::Ran
            }
            2 => {
                self.durable = self.durable.max(self.appended);
                self.pending.release(tid);
                self.rotator_pc = 3;
                Step::Ran
            }
            _ => Step::Done,
        }
    }
}

impl Model for WalRotationModel {
    fn threads(&self) -> usize {
        4
    }

    fn step(&mut self, tid: usize) -> Step {
        match tid {
            0 | 1 => self.step_appender(tid),
            2 => self.step_committer(),
            _ => self.step_rotator(),
        }
    }

    fn invariant(&self) -> Result<(), String> {
        // Durability: every LSN the published watermark covers must be in
        // a synced segment. This is exactly what the historical race broke
        // — rotation published `durable = appended` while an acknowledged
        // chunk sat in the committer's memory.
        for lsn in 1..=self.durable {
            if !self.segments.iter().any(|s| s.contains(&lsn)) {
                return Err(format!(
                    "durable watermark {} covers lsn {lsn}, which is not in any \
                     synced segment (segments: {:?})",
                    self.durable, self.segments
                ));
            }
        }
        // Layout: the concatenated segments must hold contiguous LSNs in
        // order — a late chunk writing into the wrong segment breaks this.
        let flat: Vec<u64> = self.segments.iter().flatten().copied().collect();
        for (i, lsn) in flat.iter().enumerate() {
            if *lsn != i as u64 + 1 {
                return Err(format!(
                    "segment layout corrupt: expected lsn {} at offset {i}, found \
                     {lsn} (segments: {:?})",
                    i + 1,
                    self.segments
                ));
            }
        }
        Ok(())
    }

    fn on_stuck(&self) -> Result<(), String> {
        // Parked appenders whose records no committer iteration will reach
        // are fine (the model's committer runs one iteration); a lock held
        // in a stuck state is a deadlock.
        if self.pending.is_held() || self.sink.is_held() {
            Err("deadlock: model stuck with a lock still held".to_string())
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// PR 10: RoundPool shutdown vs. the worker's steal gap
// ---------------------------------------------------------------------------

/// The RoundPool shutdown handshake (`crates/kv/src/pool.rs`).
///
/// An idle worker's loop has an *unlocked gap*: it checks `shutdown` under
/// the queue lock, releases the lock to attempt a cross-round steal, then
/// re-locks and parks on `task_ready`. `Drop` sets `shutdown` and calls
/// `notify_all`, then joins every worker.
///
/// The historical bug: `Drop` stored the flag without holding the queue
/// lock and the worker did not re-check it after the steal gap. If the
/// store + notify landed inside the gap (or between the worker's check
/// and its park), the notification found no waiter, the worker parked
/// forever, and `Drop`'s join hung the dropping thread. The fix is both
/// sides of the handshake: the flag is stored while holding the queue
/// lock, and the worker re-checks it under that lock immediately before
/// parking.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PoolShutdownModel {
    /// `true` = current code (store under the queue lock + re-check before
    /// parking); `false` = the pre-PR 10 shutdown path.
    pub fix_enabled: bool,
    queue_mutex: ModelMutex,
    task_ready: ModelCondvar,
    shutdown: bool,
    worker_exited: bool,
    worker_pc: u8,
    dropper_pc: u8,
}

/// Thread ids: 0 = worker, 1 = dropper.
impl PoolShutdownModel {
    pub fn new(fix_enabled: bool) -> Self {
        PoolShutdownModel {
            fix_enabled,
            queue_mutex: ModelMutex::default(),
            task_ready: ModelCondvar::default(),
            shutdown: false,
            worker_exited: false,
            worker_pc: 0,
            dropper_pc: 0,
        }
    }

    fn step_worker(&mut self) -> Step {
        match self.worker_pc {
            // Loop top: acquire the queue lock.
            0 => {
                if !self.queue_mutex.acquire(0) {
                    return Step::Blocked;
                }
                self.worker_pc = 1;
                Step::Ran
            }
            // Queue empty (this model has no tasks): the loop-top shutdown
            // check, under the lock.
            1 => {
                if self.shutdown {
                    self.queue_mutex.release(0);
                    self.worker_exited = true;
                    self.worker_pc = 6;
                } else {
                    // Enter the steal gap: release the lock.
                    self.queue_mutex.release(0);
                    self.worker_pc = 2;
                }
                Step::Ran
            }
            // The steal attempt, outside any lock (no rounds registered:
            // it finds nothing).
            2 => {
                self.worker_pc = 3;
                Step::Ran
            }
            // Re-acquire the queue lock after the gap.
            3 => {
                if !self.queue_mutex.acquire(0) {
                    return Step::Blocked;
                }
                self.worker_pc = 4;
                Step::Ran
            }
            // About to park. The fix re-checks shutdown here, under the
            // lock; the old code went straight into the wait.
            4 => {
                if self.fix_enabled && self.shutdown {
                    self.queue_mutex.release(0);
                    self.worker_exited = true;
                    self.worker_pc = 6;
                } else {
                    self.task_ready.enter_wait(0);
                    self.queue_mutex.release(0);
                    self.worker_pc = 5;
                }
                Step::Ran
            }
            // Parked: wake only on a delivered signal, then loop.
            5 => {
                if !self.task_ready.take_signal(0) {
                    return Step::Blocked;
                }
                self.worker_pc = 0;
                Step::Ran
            }
            _ => Step::Done,
        }
    }

    fn step_dropper(&mut self) -> Step {
        match self.dropper_pc {
            // Set the flag. Fixed code holds the queue lock around the
            // store; the old code stored it with no lock.
            0 => {
                if self.fix_enabled {
                    if !self.queue_mutex.acquire(1) {
                        return Step::Blocked;
                    }
                    self.shutdown = true;
                    self.queue_mutex.release(1);
                } else {
                    self.shutdown = true;
                }
                self.dropper_pc = 1;
                Step::Ran
            }
            // Wake every currently parked worker.
            1 => {
                self.task_ready.notify_all();
                self.dropper_pc = 2;
                Step::Ran
            }
            // Join: blocked until the worker has exited its loop.
            2 => {
                if !self.worker_exited {
                    return Step::Blocked;
                }
                self.dropper_pc = 3;
                Step::Done
            }
            _ => Step::Done,
        }
    }
}

impl Model for PoolShutdownModel {
    fn threads(&self) -> usize {
        2
    }

    fn step(&mut self, tid: usize) -> Step {
        match tid {
            0 => self.step_worker(),
            _ => self.step_dropper(),
        }
    }

    fn on_stuck(&self) -> Result<(), String> {
        if !self.worker_exited {
            Err(format!(
                "shutdown lost: worker parked forever (pc {}) while drop blocks in \
                 join with shutdown={} already set",
                self.worker_pc, self.shutdown
            ))
        } else {
            Ok(())
        }
    }
}
