//! The workspace concurrency lint: a small, offline, source-scanning
//! checker run as `cargo run -p piql-analysis --bin lint` (and as a unit
//! test, so `cargo test` enforces it).
//!
//! Rules:
//!
//! - **`raw-lock`** — `Mutex`/`RwLock`/`Condvar` must come from
//!   `piql_analysis::ordered`, never from `std::sync` or `parking_lot`
//!   directly. Raw locks dodge the rank table, so an inversion through one
//!   is invisible to `lock-order` builds. Scope: `crates/*/src/**`, minus
//!   the wrapper module itself.
//! - **`request-unwrap`** — no `.unwrap()` / `.expect()` in server
//!   request-handling sources. A panic there tears down a connection (or
//!   the whole serve loop) for a condition a client can trigger; return a
//!   protocol error instead. Scope: the request-path files listed in
//!   [`REQUEST_PATH_FILES`], non-test code.
//! - **`durability-unwrap`** — no `.unwrap()` / `.expect()` in the
//!   durability replay/recovery sources. Replay runs at boot over
//!   whatever bytes survived the crash; a panic there turns a torn tail
//!   (which recovery exists to tolerate) into a server that cannot start.
//!   Decode errors must flow through the `Truncated`/`InvalidData` paths.
//!   Scope: the files listed in [`DURABILITY_PATH_FILES`], non-test code.
//! - **`undocumented-unsafe`** — every `unsafe` block/fn needs a
//!   `// SAFETY:` comment on the same line or within the three lines
//!   above. Scope: `crates/*/src/**`.
//!
//! Suppress a finding with `// lint:allow(<rule>)` on the offending line
//! or the line directly above, ideally with a justification after it.
//! `#[cfg(test)]` modules are skipped entirely (the repo convention keeps
//! them last in the file).
//!
//! The pattern constants below are assembled with `concat!` so this file's
//! own source never contains the contiguous tokens it hunts for.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in `lint:allow(...)`.
pub const RULE_RAW_LOCK: &str = "raw-lock";
pub const RULE_REQUEST_UNWRAP: &str = "request-unwrap";
pub const RULE_DURABILITY_UNWRAP: &str = "durability-unwrap";
pub const RULE_UNDOCUMENTED_UNSAFE: &str = concat!("undocumented-", "unsafe");

/// Server sources on the request-handling path (relative to `crates/`).
pub const REQUEST_PATH_FILES: &[&str] = &[
    "server/src/server.rs",
    "server/src/protocol.rs",
    "server/src/binary.rs",
    "server/src/json.rs",
    "server/src/wire.rs",
    "server/src/registry.rs",
    "server/src/budget.rs",
];

/// Durability sources on the replay/recovery path (relative to `crates/`).
pub const DURABILITY_PATH_FILES: &[&str] = &[
    "durability/src/record.rs",
    "durability/src/snapshot.rs",
    "durability/src/wal.rs",
    "durability/src/coord.rs",
    "server/src/durable.rs",
];

/// Files exempt from `raw-lock`: the ranked wrapper implementation itself.
const RAW_LOCK_EXEMPT: &[&str] = &["analysis/src/ordered.rs"];

const SYNC_PROVENANCE: [&str; 5] = [
    concat!("std::", "sync"),
    concat!("parking", "_lot"),
    concat!("sync::", "Mutex"),
    concat!("sync::", "RwLock"),
    concat!("sync::", "Condvar"),
];
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
const UNWRAP_CALLS: [&str; 2] = [concat!(".unw", "rap()"), concat!(".exp", "ect(")];
const UNSAFE_KEYWORD: [&str; 2] = [concat!("uns", "afe "), concat!("uns", "afe{")];
const SAFETY_COMMENT: &str = concat!("SAF", "ETY:");

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// Scan results for a workspace.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Lint every `crates/*/src/**/*.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let text = fs::read_to_string(&file)?;
        report.files_scanned += 1;
        lint_file(&rel, &text, &mut report.findings);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one file's text. `rel` is the path relative to the workspace root
/// (used for scoping and reporting). Exposed for tests.
pub fn lint_file(rel: &Path, text: &str, out: &mut Vec<Finding>) {
    let in_crates = rel.strip_prefix("crates").unwrap_or(rel);
    let check_raw_lock = !RAW_LOCK_EXEMPT.iter().any(|e| in_crates == Path::new(e));
    let check_unwrap = REQUEST_PATH_FILES.iter().any(|e| in_crates == Path::new(e));
    let check_durability = DURABILITY_PATH_FILES
        .iter()
        .any(|e| in_crates == Path::new(e));

    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let raw = lines[i];
        let trimmed = raw.trim();

        // Skip `#[cfg(test)] mod …` to end of file (repo convention keeps
        // test modules last).
        if trimmed == "#[cfg(test)]" {
            let next = lines[i + 1..]
                .iter()
                .map(|l| l.trim())
                .find(|l| !l.is_empty() && !l.starts_with("#["));
            if next.is_some_and(|l| l.starts_with("mod ") || l.starts_with("pub mod ")) {
                break;
            }
        }

        let allowed = |rule: &str| {
            let tag = format!("lint:allow({rule})");
            raw.contains(&tag) || (i > 0 && lines[i - 1].contains(&tag))
        };
        // Comment-stripped view for code-pattern rules.
        let code = raw.split("//").next().unwrap_or(raw);

        if check_raw_lock
            && SYNC_PROVENANCE.iter().any(|p| code.contains(p))
            && LOCK_TYPES.iter().any(|t| code.contains(t))
            && !allowed(RULE_RAW_LOCK)
        {
            out.push(Finding {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: RULE_RAW_LOCK,
                excerpt: raw.to_string(),
            });
        }

        if check_unwrap
            && UNWRAP_CALLS.iter().any(|p| code.contains(p))
            && !allowed(RULE_REQUEST_UNWRAP)
        {
            out.push(Finding {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: RULE_REQUEST_UNWRAP,
                excerpt: raw.to_string(),
            });
        }

        if check_durability
            && UNWRAP_CALLS.iter().any(|p| code.contains(p))
            && !allowed(RULE_DURABILITY_UNWRAP)
        {
            out.push(Finding {
                file: rel.to_path_buf(),
                line: i + 1,
                rule: RULE_DURABILITY_UNWRAP,
                excerpt: raw.to_string(),
            });
        }

        if UNSAFE_KEYWORD.iter().any(|p| code.contains(p)) && !allowed(RULE_UNDOCUMENTED_UNSAFE) {
            let documented = raw.contains(SAFETY_COMMENT)
                || lines[i.saturating_sub(3)..i]
                    .iter()
                    .any(|l| l.contains(SAFETY_COMMENT));
            if !documented {
                out.push(Finding {
                    file: rel.to_path_buf(),
                    line: i + 1,
                    rule: RULE_UNDOCUMENTED_UNSAFE,
                    excerpt: raw.to_string(),
                });
            }
        }

        i += 1;
    }
}
