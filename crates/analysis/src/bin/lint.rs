//! Workspace lint gate: `cargo run -p piql-analysis --bin lint [root]`.
//!
//! Scans `crates/*/src/**` for raw lock construction, request-path
//! unwraps, and undocumented `unsafe`. Exits non-zero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

use piql_analysis::lint;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Compiled-in manifest dir: crates/analysis → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("workspace root resolvable")
        });

    let report = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        println!("lint: {} files scanned, 0 violations", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "lint: {} files scanned, {} violation(s)",
            report.files_scanned,
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}
