//! Concurrency invariant analysis for the PIQL workspace.
//!
//! PIQL's thesis is that static analysis buys predictability: bound the
//! work before running the query. This crate applies the same philosophy
//! to the engine's own concurrency, turning the lock-ordering prose in
//! ARCHITECTURE.md into machine-checked artifacts:
//!
//! - [`ordered`] — ranked `Mutex`/`RwLock`/`Condvar` wrappers. Free in
//!   release builds; under the `lock-order` feature every acquisition is
//!   checked against the thread's held ranks and inversions panic with
//!   both acquisition backtraces.
//! - [`rank`] — the global rank table, one constant per lock, ordered
//!   outermost-first.
//! - [`check`] — a deterministic mini model checker (virtual threads,
//!   exhaustive and seeded-random schedule exploration) for small
//!   concurrency models.
//! - [`models`] — regression models for the two races this workspace has
//!   shipped (PR 5 RoundPool baton-pass, PR 6 WAL rotation vs. group
//!   commit), each with the fix revertible for fail/pass pairing.
//! - [`lint`] — the offline source lint behind
//!   `cargo run -p piql-analysis --bin lint`.

pub mod check;
pub mod lint;
pub mod models;
pub mod ordered;
pub mod rank;
