//! A deterministic mini model checker for small concurrency models.
//!
//! Real schedulers only ever show one interleaving per run; the races this
//! workspace has actually shipped (the RoundPool condvar baton-pass race in
//! PR 5, the WAL rotation/group-commit race in PR 6) each hid in one
//! specific interleaving. This harness explores interleavings on purpose:
//! a concurrent algorithm is written as a handful of *virtual threads*
//! advancing a shared state machine one atomic step at a time, and the
//! explorer drives every (or, in random mode, many) schedules over it.
//!
//! Models are deliberately tiny — a few threads, a few steps each — so
//! exhaustive exploration with state memoization finishes in milliseconds.
//! A model is *not* the production code; it is the production algorithm's
//! locking skeleton, small enough to enumerate. See [`crate::models`] for
//! the two regression models.
//!
//! ## Writing a model
//!
//! Implement [`Model`]: `step(tid)` advances thread `tid` by one atomic
//! step and reports whether it ran, is blocked, or has finished.
//! [`Model::invariant`] is checked after every successful step — express
//! safety properties ("no acknowledged record is absent from a synced
//! segment") there, and liveness-on-termination properties ("no task left
//! unclaimed while workers park") in [`Model::on_stuck`].
//!
//! `step` must be deterministic and may mutate freely even when it returns
//! [`Step::Blocked`]: the explorer clones the model before every probe and
//! discards the clone if the thread did not run.

use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};

/// Result of advancing one virtual thread by one atomic step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed its step; the model state advanced.
    Ran,
    /// The thread cannot run right now (lock held elsewhere, condition not
    /// yet true). The explorer will retry it after other threads move.
    Blocked,
    /// The thread has no more steps.
    Done,
}

/// A small concurrency model: `threads()` virtual threads advancing one
/// shared state machine.
pub trait Model {
    /// Number of virtual threads. Thread ids are `0..threads()`.
    fn threads(&self) -> usize;

    /// Advance thread `tid` by one atomic step.
    fn step(&mut self, tid: usize) -> Step;

    /// Safety property, checked after every successful step and in every
    /// terminal state.
    fn invariant(&self) -> Result<(), String> {
        Ok(())
    }

    /// Called when no thread can run but not all threads are done. Return
    /// `Err` to treat the stuck state as a violation (lost wakeup /
    /// deadlock), `Ok` if parking forever is legitimate here.
    fn on_stuck(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A schedule that violated the model, with the failing step sequence
/// (thread ids in execution order) for replay.
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: Vec<usize>,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule {:?})", self.message, self.schedule)
    }
}

/// Exploration statistics for a passing run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Distinct states visited (exhaustive) or schedules executed (random).
    pub explored: u64,
    /// Longest schedule observed.
    pub max_depth: usize,
}

/// Exhaustively explore every schedule of `model`, deduplicating on state:
/// since steps are deterministic, an already-seen state's subtree needs no
/// second visit. Returns the first violating schedule found, if any.
///
/// `max_steps` bounds a single schedule's length as a runaway guard; tiny
/// models sit far below it.
pub fn explore<M>(model: &M, max_steps: usize) -> Result<Stats, Violation>
where
    M: Model + Clone + Hash,
{
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stats = Stats::default();
    let mut schedule = Vec::new();
    dfs(model, max_steps, &mut seen, &mut stats, &mut schedule)?;
    Ok(stats)
}

fn dfs<M>(
    model: &M,
    budget: usize,
    seen: &mut HashSet<u64>,
    stats: &mut Stats,
    schedule: &mut Vec<usize>,
) -> Result<(), Violation>
where
    M: Model + Clone + Hash,
{
    if !seen.insert(fingerprint(model)) {
        return Ok(());
    }
    stats.explored += 1;
    stats.max_depth = stats.max_depth.max(schedule.len());
    if budget == 0 {
        return Err(Violation {
            schedule: schedule.clone(),
            message: "model did not terminate within the step budget".to_string(),
        });
    }

    let mut any_ran = false;
    let mut all_done = true;
    for tid in 0..model.threads() {
        let mut next = model.clone();
        match next.step(tid) {
            Step::Done => continue,
            Step::Blocked => {
                all_done = false;
                continue;
            }
            Step::Ran => {
                any_ran = true;
                all_done = false;
                schedule.push(tid);
                if let Err(message) = next.invariant() {
                    return Err(Violation {
                        schedule: schedule.clone(),
                        message,
                    });
                }
                dfs(&next, budget - 1, seen, stats, schedule)?;
                schedule.pop();
            }
        }
    }

    if !any_ran {
        let check = if all_done {
            model.invariant()
        } else {
            model.on_stuck()
        };
        if let Err(message) = check {
            return Err(Violation {
                schedule: schedule.clone(),
                message,
            });
        }
    }
    Ok(())
}

/// Run `iterations` randomly-scheduled executions of `model`, seeded for
/// reproducibility. Complements [`explore`] for models a bit too large to
/// enumerate; with a fixed seed a failure is replayable.
pub fn explore_random<M>(
    model: &M,
    seed: u64,
    iterations: u64,
    max_steps: usize,
) -> Result<Stats, Violation>
where
    M: Model + Clone,
{
    let mut stats = Stats::default();
    let mut rng = seed.max(1);
    for _ in 0..iterations {
        stats.explored += 1;
        let mut state = model.clone();
        let mut schedule = Vec::new();
        loop {
            if schedule.len() > max_steps {
                return Err(Violation {
                    schedule,
                    message: "model did not terminate within the step budget".to_string(),
                });
            }
            // Probe threads in a randomly-rotated order; take the first
            // runnable one.
            let n = state.threads();
            let start = {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                (rng % n as u64) as usize
            };
            let mut progressed = false;
            let mut all_done = true;
            for off in 0..n {
                let tid = (start + off) % n;
                let mut next = state.clone();
                match next.step(tid) {
                    Step::Done => continue,
                    Step::Blocked => {
                        all_done = false;
                        continue;
                    }
                    Step::Ran => {
                        schedule.push(tid);
                        if let Err(message) = next.invariant() {
                            return Err(Violation { schedule, message });
                        }
                        state = next;
                        progressed = true;
                        break;
                    }
                }
            }
            if progressed {
                continue;
            }
            let check = if all_done {
                state.invariant()
            } else {
                state.on_stuck()
            };
            if let Err(message) = check {
                return Err(Violation { schedule, message });
            }
            stats.max_depth = stats.max_depth.max(schedule.len());
            break;
        }
    }
    Ok(stats)
}

fn fingerprint<M: Hash>(model: &M) -> u64 {
    let mut h = DefaultHasher::new();
    model.hash(&mut h);
    h.finish()
}

/// A mutex for use *inside* models: plain state, no real blocking. Threads
/// call [`ModelMutex::acquire`] in a step and return [`Step::Blocked`] when
/// it fails.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ModelMutex {
    holder: Option<usize>,
}

impl ModelMutex {
    /// Try to take the mutex for `tid`; `false` means blocked.
    pub fn acquire(&mut self, tid: usize) -> bool {
        match self.holder {
            None => {
                self.holder = Some(tid);
                true
            }
            Some(h) => h == tid,
        }
    }

    pub fn release(&mut self, tid: usize) {
        debug_assert_eq!(self.holder, Some(tid), "release by non-holder");
        self.holder = None;
    }

    pub fn held_by(&self, tid: usize) -> bool {
        self.holder == Some(tid)
    }

    pub fn is_held(&self) -> bool {
        self.holder.is_some()
    }
}

/// A condition-variable wait set for models, with *lost-wakeup semantics*:
/// `notify_one` delivers to a member of the wait set, and delivering to a
/// member that is already signalled absorbs (loses) the notification —
/// exactly the signal-stealing behaviour real condvars permit, and the
/// mechanism behind the PR 5 RoundPool race. Delivery is adversarial:
/// an already-signalled waiter is preferred, to surface the worst case
/// deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ModelCondvar {
    /// (tid, signalled) for each thread currently in the wait set. A thread
    /// stays in the set — and can keep absorbing signals — until it runs
    /// its wake-up step and leaves via [`ModelCondvar::take_signal`].
    waiters: Vec<(usize, bool)>,
}

impl ModelCondvar {
    /// Enter the wait set (the caller must model releasing the mutex).
    pub fn enter_wait(&mut self, tid: usize) {
        debug_assert!(!self.waiters.iter().any(|&(t, _)| t == tid));
        self.waiters.push((tid, false));
    }

    /// Deliver one notification. Prefers an already-signalled waiter (the
    /// adversarial, signal-stealing delivery); with none, signals the
    /// first unsignalled waiter. With an empty wait set the notification
    /// is dropped, as with a real condvar.
    pub fn notify_one(&mut self) {
        if self.waiters.iter().any(|&(_, s)| s) {
            return; // absorbed by an already-signalled waiter: lost.
        }
        if let Some(w) = self.waiters.iter_mut().find(|(_, s)| !*s) {
            w.1 = true;
        }
    }

    /// Deliver to every current waiter.
    pub fn notify_all(&mut self) {
        for w in &mut self.waiters {
            w.1 = true;
        }
    }

    /// If `tid` has been signalled, remove it from the wait set and return
    /// `true`: it should now re-acquire the mutex. `false` means keep
    /// waiting (the caller's step returns [`Step::Blocked`]).
    pub fn take_signal(&mut self, tid: usize) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&(t, s)| t == tid && s) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn is_waiting(&self, tid: usize) -> bool {
        self.waiters.iter().any(|&(t, _)| t == tid)
    }
}
