//! The global lock-rank table.
//!
//! Every lock in the workspace is constructed with one of these ranks. A
//! thread may only acquire a lock whose rank is **strictly greater** than
//! every rank it already holds, so any cycle in the runtime lock graph —
//! the precondition for deadlock — trips a panic in `lock-order` builds
//! instead of hanging in production. Equal ranks cannot nest either, which
//! is deliberate: peers at one rank (e.g. the shard stripes of a table, or
//! the DDL and statement mirrors of the durability coordinator) must never
//! be held together, and giving them one shared rank machine-checks that.
//!
//! Ranks are ordered outermost-first: a small rank is an *outer* lock that
//! may be held while inner (larger-rank) locks are taken. The gaps between
//! neighbouring ranks are intentional slack for future locks.
//!
//! ## Adding a new lock
//!
//! 1. Enumerate every path that can hold an existing lock while taking the
//!    new one, and every path that can hold the new one while taking an
//!    existing one. ARCHITECTURE.md § "Concurrency analysis" lists the
//!    current nesting chains.
//! 2. Pick a rank strictly between the outermost lock that can be held
//!    *around* it and the innermost lock it can be held *around*. If no such
//!    gap exists the design has a cycle — fix the design, not the table.
//! 3. Add the constant here with a doc comment naming the owning struct and
//!    field, and run the full suite with `--features piql-analysis/lock-order`.

// ---- server connection plumbing (outermost: held around whole requests) ----

/// `Server` accept loop's registry of live connection streams.
pub const SERVER_STREAMS: u32 = 5;
/// `ConnState.serial`: the per-connection serial execution lane.
pub const SERVER_SERIAL: u32 = 6;
/// `ConnState.idle_sessions`: pooled sessions for tagged dispatch.
pub const SERVER_IDLE_SESSIONS: u32 = 7;
/// `InFlight.state`: a connection's backpressure window (decoded-but-not-
/// yet-written request count). Taken with nothing else held by both the
/// reader (acquire/stall) and the writer (release/poison).
pub const SERVER_INFLIGHT: u32 = 8;

// ---- statement registry ----

/// `StatementRegistry.sweep_lock`: serialises whole revalidation sweeps.
pub const REGISTRY_SWEEP: u32 = 10;
/// `StatementRegistry.statements`: the name → statement map. Journaling
/// happens while this is held for write (install/uninstall ordering).
pub const REGISTRY_STATEMENTS: u32 = 20;
/// `StatementRegistry.overload`: the overload-control configuration.
/// May be read while `REGISTRY_STATEMENTS` is held (tenant resolution at
/// install), never the reverse.
pub const REGISTRY_OVERLOAD: u32 = 22;
/// `StatementRegistry.journal`: the optional statement-journal sink handle.
pub const REGISTRY_JOURNAL: u32 = 25;
/// `StatementRegistry.durability`: the optional durability handle.
pub const REGISTRY_DURABILITY: u32 = 26;
/// `StatementRegistry.tenants`: tenant name → admission budget map.
pub const REGISTRY_TENANTS: u32 = 27;
/// `TenantBudget.in_flight`: one tenant's concurrent-execution permit
/// count. Held only for the permit bookkeeping (and the queue-policy
/// wait), never across an execution.
pub const TENANT_BUDGET: u32 = 28;
/// `RegisteredStatement.state`: per-statement compiled plan + prediction.
pub const STATEMENT_STATE: u32 = 30;
/// `RegisteredStatement.metrics`: per-statement run-metrics reservoir.
pub const STATEMENT_METRICS: u32 = 31;

// ---- durability coordinator (outer half) ----

/// `Durability.snapshot_lock`: serialises snapshot production.
pub const DUR_SNAPSHOT: u32 = 35;

// ---- engine ----

/// `Database.catalog`: table/index definitions. Held only for short
/// clone/update critical sections, but DDL paths take it before touching kv.
pub const ENGINE_CATALOG: u32 = 40;

// ---- predictor shared-model store ----

/// `SharedModelStore.rotate_lock`: serialises model rotation.
pub const MODEL_ROTATE: u32 = 44;
/// `SharedModelStore.live`: the accumulating live interval.
pub const MODEL_LIVE: u32 = 45;
/// `SharedModelStore.published`: the published model snapshot.
pub const MODEL_PUBLISHED: u32 = 46;
/// `SharedModelStore.observer`: rotation observer callback slot. Held while
/// the observer runs, which may append to the WAL (rank `WAL_PENDING`).
pub const MODEL_OBSERVER: u32 = 47;

// ---- kv clusters (live and simulated) ----

/// `LiveCluster.names` / `SimCluster.names`: namespace name → id.
pub const KV_NAMES: u32 = 50;
/// `LiveCluster.namespaces` / `SimCluster.namespaces`: id → namespace.
pub const KV_NAMESPACES: u32 = 52;
/// `PartitionMap.placements`: simulated shard placement table.
pub const SIM_PLACEMENTS: u32 = 53;
/// `LiveCluster.wal`: the cluster-wide WAL sink handle.
pub const KV_CLUSTER_WAL: u32 = 54;
/// `LiveNamespace.wal`: the per-namespace WAL hook.
pub const KV_NS_WAL: u32 = 56;
/// `SimStore.entries`: a simulated table's versioned key space.
pub const SIM_STORE: u32 = 57;
/// `LiveNamespace.table`: the current `ShardSet` generation. Writers hold
/// it for read across shard mutation; rebalance holds it for write.
pub const KV_TABLE: u32 = 58;
/// `ShardSet.shards[i]`: one shard stripe. Peers — never held together.
pub const KV_SHARD: u32 = 60;
/// `LiveSampleSink.stripes[i]`: one latency-sample stripe. Peers.
pub const KV_SAMPLE_STRIPE: u32 = 62;
/// `StorageNode.state`: simulated node timing state (leaf).
pub const SIM_NODE: u32 = 63;

// ---- durability coordinator (mirrors) ----

/// `Durability.ddl` and `Durability.statements`: recovery mirrors. Peers —
/// each log call appends to the WAL while exactly one mirror is held.
pub const DUR_MIRROR: u32 = 70;
/// `Durability.snapshot_time`: last-snapshot timestamp (leaf metadata).
pub const DUR_SNAPSHOT_TIME: u32 = 72;

// ---- write-ahead log ----

/// `Wal.pending`: the group-commit staging buffer. The committer and
/// `rotate_to` take `pending` before `sink` — never the reverse.
pub const WAL_PENDING: u32 = 80;
/// `Wal.sink`: the open segment file. Acquired while `pending` is still
/// held so no later chunk can overtake a published durable watermark.
pub const WAL_SINK: u32 = 82;
/// `Wal.durable`: the durable-LSN watermark.
pub const WAL_DURABLE: u32 = 84;
/// `Wal.committer`: the committer thread's join handle.
pub const WAL_COMMITTER: u32 = 86;

// ---- dispatch pool (innermost) ----
//
// Pool ranks sit above every data-plane rank on purpose: task bodies take
// kv/WAL locks, so a task body running while a pool lock is held would be
// an inversion — which is exactly the invariant (no user code under pool
// locks) we want machine-checked.

/// `PoolShared.queue`: the submitted-task queue.
pub const POOL_QUEUE: u32 = 90;
/// `PoolShared.rounds`: weak registry of active rounds for work stealing.
pub const POOL_ROUNDS: u32 = 92;
/// `RoundState.pending`: a round's not-yet-claimed task list.
pub const POOL_ROUND_PENDING: u32 = 94;
/// `RoundState.inner`: a round's completion counters.
pub const POOL_ROUND_INNER: u32 = 96;
