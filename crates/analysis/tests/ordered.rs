//! Behaviour of the ranked lock wrappers: pass-through semantics always,
//! and — with `--features lock-order` — proof that inversions actually
//! fire with both lock names in the panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use piql_analysis::ordered::{Condvar, Mutex, RwLock};

#[test]
fn mutex_and_condvar_pass_values_across_threads() {
    let slot: Arc<(Mutex<Option<u32>>, Condvar)> =
        Arc::new((Mutex::new(10, "test.slot", None), Condvar::new()));
    let producer = {
        let slot = Arc::clone(&slot);
        thread::spawn(move || {
            let mut g = slot.0.lock();
            *g = Some(42);
            drop(g);
            slot.1.notify_one();
        })
    };
    let mut g = slot.0.lock();
    while g.is_none() {
        let (next, _) = slot.1.wait_timeout(g, Duration::from_millis(50));
        g = next;
    }
    assert_eq!(*g, Some(42));
    drop(g);
    producer.join().expect("producer exits cleanly");
}

#[test]
fn rwlock_allows_concurrent_readers() {
    let lock = Arc::new(RwLock::new(10, "test.rw", 7u32));
    let in_read = Arc::new(AtomicBool::new(false));
    let reader = {
        let lock = Arc::clone(&lock);
        let in_read = Arc::clone(&in_read);
        thread::spawn(move || {
            let g = lock.read();
            in_read.store(true, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(20));
            *g
        })
    };
    while !in_read.load(Ordering::SeqCst) {
        thread::yield_now();
    }
    // A second reader must not block behind the first.
    assert_eq!(*lock.read(), 7);
    assert_eq!(reader.join().expect("reader exits"), 7);
    *lock.write() += 1;
    assert_eq!(*lock.read(), 8);
}

#[cfg(feature = "lock-order")]
mod lock_order {
    use super::*;
    use std::panic::{self, AssertUnwindSafe};

    /// Run `f` expecting a panic; return the panic message.
    fn panic_message(f: impl FnOnce()) -> String {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        panic::set_hook(prev);
        let payload = result.expect_err("expected a lock-order panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn seeded_inversion_fires_with_both_lock_names() {
        let outer = Mutex::new(10, "test.outer", ());
        let inner = Mutex::new(20, "test.inner", ());

        // Documented order is fine.
        {
            let _o = outer.lock();
            let _i = inner.lock();
        }

        // Seeded inversion: inner before outer must panic, naming both.
        let msg = panic_message(|| {
            let _i = inner.lock();
            let _o = outer.lock();
        });
        assert!(msg.contains("lock-order violation"), "message: {msg}");
        assert!(
            msg.contains("test.outer") && msg.contains("(rank 10)"),
            "message: {msg}"
        );
        assert!(
            msg.contains("test.inner") && msg.contains("(rank 20)"),
            "message: {msg}"
        );
    }

    #[test]
    fn equal_ranks_cannot_nest() {
        let a = Mutex::new(60, "test.peer-a", ());
        let b = Mutex::new(60, "test.peer-b", ());
        let msg = panic_message(|| {
            let _a = a.lock();
            let _b = b.lock();
        });
        assert!(msg.contains("lock-order violation"), "message: {msg}");
    }

    #[test]
    fn rwlock_reads_participate_in_ordering() {
        let outer = RwLock::new(10, "test.rw-outer", ());
        let inner = RwLock::new(20, "test.rw-inner", ());
        {
            let _o = outer.read();
            let _i = inner.read();
        }
        let msg = panic_message(|| {
            let _i = inner.write();
            let _o = outer.read();
        });
        assert!(msg.contains("test.rw-outer"), "message: {msg}");
    }

    #[test]
    fn released_ranks_no_longer_constrain() {
        let outer = Mutex::new(10, "test.released-outer", ());
        let inner = Mutex::new(20, "test.released-inner", ());
        {
            let _i = inner.lock();
        }
        // The higher rank was dropped, so the lower rank is fine now.
        let _o = outer.lock();
        let _i = inner.lock();
    }

    #[test]
    fn condvar_wait_releases_the_rank_while_parked() {
        // A waiter parked on rank 20 does not block its own wake-up path,
        // and the rank is re-registered when the wait returns: taking a
        // lower rank after waking must still panic.
        let pair: Arc<(Mutex<bool>, Condvar)> =
            Arc::new((Mutex::new(20, "test.cv-mutex", false), Condvar::new()));
        let low = Arc::new(Mutex::new(10, "test.cv-low", ()));

        let waiter = {
            let pair = Arc::clone(&pair);
            let low = Arc::clone(&low);
            thread::spawn(move || {
                let mut g = pair.0.lock();
                while !*g {
                    g = pair.1.wait(g);
                }
                // Still holding rank 20 after the wait: rank 10 must trip.
                panic_message(|| {
                    let _l = low.lock();
                })
            })
        };

        // While the waiter is parked it holds no rank — this thread can
        // take the mutex freely.
        thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        let msg = waiter.join().expect("waiter exits");
        assert!(msg.contains("lock-order violation"), "message: {msg}");
    }
}
