//! The historical-race regression pairing: each model must *fail* with its
//! fix reverted (the explorer rediscovers the shipped bug) and *pass* with
//! the current algorithm, so the models stay honest in both directions.

use piql_analysis::check::{explore, explore_random};
use piql_analysis::models::{BatonPassModel, PoolShutdownModel, WalRotationModel};

const MAX_STEPS: usize = 256;

#[test]
fn baton_pass_race_rediscovered_with_fix_reverted() {
    let violation = explore(&BatonPassModel::new(false), MAX_STEPS)
        .expect_err("the pre-PR 5 worker loop must lose a wakeup in some schedule");
    assert!(
        violation.message.contains("lost wakeup"),
        "unexpected violation: {violation}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "schedule should be reported"
    );
}

#[test]
fn baton_pass_fix_passes_every_schedule() {
    let stats = explore(&BatonPassModel::new(true), MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed baton-pass model violated: {v}"));
    // Sanity: the explorer genuinely explored a branching schedule space.
    assert!(
        stats.explored > 50,
        "suspiciously small exploration: {stats:?}"
    );
}

#[test]
fn wal_rotation_race_rediscovered_with_fix_reverted() {
    let violation = explore(&WalRotationModel::new(false), MAX_STEPS)
        .expect_err("the pre-review committer must publish an unsynced watermark");
    assert!(
        violation.message.contains("durable watermark")
            || violation.message.contains("segment layout"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn wal_rotation_fix_passes_every_schedule() {
    let stats = explore(&WalRotationModel::new(true), MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed WAL rotation model violated: {v}"));
    assert!(
        stats.explored > 100,
        "suspiciously small exploration: {stats:?}"
    );
}

#[test]
fn random_exploration_agrees_with_exhaustive() {
    // Seeded-random mode finds the WAL race too (deterministically, given
    // the fixed seed), and clears the fixed model.
    explore_random(&WalRotationModel::new(false), 0x5EED, 4000, MAX_STEPS)
        .expect_err("random exploration should hit the rotation race");
    explore_random(&WalRotationModel::new(true), 0x5EED, 4000, MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed model violated under random schedules: {v}"));
    explore_random(&BatonPassModel::new(false), 0x5EED, 4000, MAX_STEPS)
        .expect_err("random exploration should hit the baton-pass race");
    explore_random(&BatonPassModel::new(true), 0x5EED, 4000, MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed model violated under random schedules: {v}"));
}

#[test]
fn pool_shutdown_race_rediscovered_with_fix_reverted() {
    let violation = explore(&PoolShutdownModel::new(false), MAX_STEPS)
        .expect_err("the pre-PR 10 shutdown path must strand a parked worker");
    assert!(
        violation.message.contains("shutdown lost"),
        "unexpected violation: {violation}"
    );
}

#[test]
fn pool_shutdown_fix_passes_every_schedule() {
    explore(&PoolShutdownModel::new(true), MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed shutdown model violated: {v}"));
}

#[test]
fn pool_shutdown_random_agrees_with_exhaustive() {
    explore_random(&PoolShutdownModel::new(false), 0x5EED, 4000, MAX_STEPS)
        .expect_err("random exploration should hit the shutdown race");
    explore_random(&PoolShutdownModel::new(true), 0x5EED, 4000, MAX_STEPS)
        .unwrap_or_else(|v| panic!("fixed model violated under random schedules: {v}"));
}
