//! The lint gate: `cargo test` fails if any workspace source violates the
//! concurrency lint, so the rules hold without anyone remembering to run
//! the binary. Plus unit coverage for each rule and the escape hatch.

use std::path::{Path, PathBuf};

use piql_analysis::lint::{lint_file, lint_workspace, Finding};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files_scanned > 20,
        "scan looks incomplete: {report:?}"
    );
    assert!(
        report.findings.is_empty(),
        "lint violations:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn run(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    lint_file(Path::new(rel), text, &mut out);
    out
}

#[test]
fn raw_lock_constructions_are_flagged() {
    let stdsync = ["use std::", "sync::Mutex;"].concat();
    let plot = ["use parking", "_lot::RwLock;"].concat();
    let qualified = ["let m = std::", "sync::Condvar::new();"].concat();
    for line in [stdsync, plot, qualified] {
        let found = run("crates/kv/src/example.rs", &line);
        assert_eq!(found.len(), 1, "line should be flagged: {line}");
        assert_eq!(found[0].rule, "raw-lock");
        assert_eq!(found[0].line, 1);
    }
    // Arc and atomics from std::sync are fine, as are the ordered wrappers.
    let arc = ["use std::", "sync::Arc;"].concat();
    assert!(run("crates/kv/src/example.rs", &arc).is_empty());
    assert!(run(
        "crates/kv/src/example.rs",
        "use piql_analysis::ordered::{Mutex, RwLock};"
    )
    .is_empty());
}

#[test]
fn raw_lock_exempts_the_wrapper_module() {
    let line = ["use std::", "sync::Mutex;"].concat();
    assert!(run("crates/analysis/src/ordered.rs", &line).is_empty());
}

#[test]
fn request_path_unwraps_are_flagged_only_on_request_files() {
    let text = "fn f() {\n    x.lock().unwrap();\n}\n";
    let found = run("crates/server/src/server.rs", text);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "request-unwrap");
    assert_eq!(found[0].line, 2);
    // Same text outside the request path: no finding.
    assert!(run("crates/kv/src/pool.rs", text).is_empty());
}

#[test]
fn durability_replay_unwraps_are_flagged_only_on_replay_files() {
    let text = "fn f() {\n    bytes.try_into().unwrap();\n}\n";
    for rel in [
        "crates/durability/src/record.rs",
        "crates/durability/src/snapshot.rs",
        "crates/durability/src/wal.rs",
        "crates/server/src/durable.rs",
    ] {
        let found = run(rel, text);
        assert_eq!(found.len(), 1, "{rel} should be flagged");
        assert_eq!(found[0].rule, "durability-unwrap");
        assert_eq!(found[0].line, 2);
    }
    // Same text outside the replay path: no finding.
    assert!(run("crates/durability/src/lib.rs", text).is_empty());
    // The escape hatch works, with a justification.
    let allowed = "x.expect(\"spawn\"); // lint:allow(durability-unwrap): startup, not replay\n";
    assert!(run("crates/durability/src/wal.rs", allowed).is_empty());
}

#[test]
fn allow_directive_suppresses_on_same_or_previous_line() {
    let same = "x.expect(\"invariant\"); // lint:allow(request-unwrap): compile-time invariant\n";
    assert!(run("crates/server/src/registry.rs", same).is_empty());
    let above = "// lint:allow(request-unwrap): checked by caller\nx.unwrap();\n";
    assert!(run("crates/server/src/registry.rs", above).is_empty());
    // The wrong rule name does not suppress.
    let wrong = "// lint:allow(raw-lock)\nx.unwrap();\n";
    assert_eq!(run("crates/server/src/registry.rs", wrong).len(), 1);
}

#[test]
fn cfg_test_modules_are_skipped() {
    let text = format!(
        "fn live() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ x.{}(); }}\n}}\n",
        ["unw", "rap"].concat()
    );
    assert!(run("crates/server/src/server.rs", &text).is_empty());
}

#[test]
fn undocumented_unsafe_requires_safety_comment() {
    let kw = ["uns", "afe"].concat();
    let bare = format!("{kw} {{ ptr.read() }}\n");
    let found = run("crates/kv/src/example.rs", &bare);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, ["undocumented-", &kw].concat());

    let documented =
        format!("// SAFETY: ptr is valid for reads, checked above.\n{kw} {{ ptr.read() }}\n");
    assert!(run("crates/kv/src/example.rs", &documented).is_empty());
}
