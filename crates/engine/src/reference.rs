//! A deliberately naive reference executor — the semantics oracle.
//!
//! Executes the binder's *unoptimized* logical plan by materializing whole
//! relations and nested-loop joining. It shares no code with the optimized
//! path beyond binding and predicate evaluation, so differential tests
//! comparing the two catch planner and executor bugs alike. Never use it
//! for anything but tests: it is exactly the Class-III/IV behaviour PIQL
//! exists to prevent.

use crate::exec::{sort_rows, ExecError};
use crate::keys;
use piql_core::ast::SelectStmt;
use piql_core::catalog::{Catalog, TableId};
use piql_core::plan::logical::LogicalPlan;
use piql_core::plan::params::Params;
use piql_core::plan::{bind, BoundPredicate, RelationSource};
use piql_core::tuple::Tuple;
use piql_kv::{KvRequest, KvStore, Session};

/// The oracle.
pub struct ReferenceExecutor<'a> {
    store: &'a dyn KvStore,
    catalog: &'a Catalog,
}

impl<'a> ReferenceExecutor<'a> {
    pub fn new(store: &'a dyn KvStore, catalog: &'a Catalog) -> Self {
        ReferenceExecutor { store, catalog }
    }

    /// Run a SELECT to completion, returning projected rows.
    pub fn run(&self, stmt: &SelectStmt, params: &Params) -> Result<Vec<Tuple>, ExecError> {
        let bq = bind(self.catalog, stmt)
            .map_err(|e| ExecError::Internal(format!("reference bind: {e}")))?;
        let schema = &bq.schema;
        let eval = RefEval {
            exec: self,
            params,
            schema,
        };
        eval.eval(&bq.plan)
    }

    /// Scan an entire table into full-row tuples (unbounded — test only).
    pub fn scan_all(&self, table_id: TableId) -> Result<Vec<Tuple>, ExecError> {
        let table = self.catalog.table_by_id(table_id);
        let ns = self.store.namespace(&Catalog::table_namespace(table));
        let mut session = Session::new();
        let mut rows = Vec::new();
        let mut start: Vec<u8> = Vec::new();
        loop {
            let resp = self.store.execute_round(
                &mut session,
                vec![KvRequest::GetRange {
                    ns,
                    start: start.clone(),
                    end: None,
                    limit: Some(1024),
                    reverse: false,
                }],
            );
            let entries = resp
                .first()
                .ok_or_else(|| {
                    ExecError::Internal("malformed round: backend returned no responses".into())
                })?
                .entries()?
                .to_vec();
            let n = entries.len();
            for (k, v) in entries {
                rows.push(keys::decode_row(table, &v)?);
                start = k;
                start.push(0);
            }
            if n < 1024 {
                break;
            }
        }
        Ok(rows)
    }
}

struct RefEval<'a, 'b> {
    exec: &'a ReferenceExecutor<'b>,
    params: &'a Params,
    schema: &'a piql_core::plan::QuerySchema,
}

impl RefEval<'_, '_> {
    fn eval(&self, plan: &LogicalPlan) -> Result<Vec<Tuple>, ExecError> {
        match plan {
            LogicalPlan::Relation { rel } => {
                let relation = self.schema.relation(*rel);
                match &relation.source {
                    RelationSource::Table(tid) => {
                        // pad to global-field width: tuples in the reference
                        // evaluator always span the full field space
                        let rows = self.exec.scan_all(*tid)?;
                        Ok(rows
                            .into_iter()
                            .map(|r| self.widen(relation.first_field, r))
                            .collect())
                    }
                    RelationSource::ParamValues { param, .. } => {
                        let vals = self.params.collection(
                            param.index,
                            &param.name,
                            param.max_cardinality,
                        )?;
                        Ok(vals
                            .iter()
                            .map(|v| self.widen(relation.first_field, Tuple::new(vec![v.clone()])))
                            .collect())
                    }
                }
            }
            LogicalPlan::ParamValues { rel } => self.eval(&LogicalPlan::Relation { rel: *rel }),
            LogicalPlan::Selection { input, predicates } => {
                let rows = self.eval(input)?;
                let mut out = Vec::new();
                for r in rows {
                    if BoundPredicate::eval_all(predicates, &r, self.params)? {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            LogicalPlan::Join { left, right, on } => {
                let lrows = self.eval(left)?;
                let rrows = self.eval(right)?;
                let mut out = Vec::new();
                for l in &lrows {
                    for r in &rrows {
                        let ok = on.iter().all(|(lf, rf)| {
                            let a = &l[*lf];
                            let b = &r[*rf];
                            !a.is_null()
                                && !b.is_null()
                                && a.total_cmp(b) == std::cmp::Ordering::Equal
                        });
                        if ok {
                            out.push(self.merge(l, r));
                        }
                    }
                }
                Ok(out)
            }
            LogicalPlan::Sort { input, keys } => {
                let mut rows = self.eval(input)?;
                let keys: Vec<(usize, piql_core::codec::key::Dir)> =
                    keys.iter().map(|(f, d)| (*f, *d)).collect();
                sort_rows(&mut rows, &keys);
                Ok(rows)
            }
            LogicalPlan::Stop { input, stop } => {
                let mut rows = self.eval(input)?;
                // data-stops are annotations, not truncations
                if stop.kind == piql_core::plan::StopKind::Standard {
                    rows.truncate(stop.count as usize);
                }
                Ok(rows)
            }
            LogicalPlan::Project { input, items } => {
                let rows = self.eval(input)?;
                Ok(rows
                    .into_iter()
                    .map(|r| Tuple::new(items.iter().map(|(f, _)| r[*f].clone()).collect()))
                    .collect())
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let rows = self.eval(input)?;
                let phys: Vec<piql_core::plan::physical::PhysAggregate> = aggs
                    .iter()
                    .map(|a| piql_core::plan::physical::PhysAggregate {
                        func: a.func,
                        arg: a.arg,
                        alias: a.alias.clone(),
                    })
                    .collect();
                Ok(crate::exec::aggregate_rows(rows, group_by, &phys))
            }
        }
    }

    /// Place a relation's row into the global field space, NULL elsewhere.
    fn widen(&self, first_field: usize, row: Tuple) -> Tuple {
        let width = self.schema.fields.len();
        let mut vals = vec![piql_core::value::Value::Null; width];
        for (i, v) in row.into_values().into_iter().enumerate() {
            vals[first_field + i] = v;
        }
        Tuple::new(vals)
    }

    /// Merge two widened rows (non-null fields win).
    fn merge(&self, l: &Tuple, r: &Tuple) -> Tuple {
        let vals = l
            .values()
            .iter()
            .zip(r.values())
            .map(|(a, b)| if a.is_null() { b.clone() } else { a.clone() })
            .collect();
        Tuple::new(vals)
    }
}
