//! The `Database` facade: PIQL's library-centric database engine (§3).
//!
//! One `Database` instance corresponds to one application-server library:
//! it owns a catalog, compiles PIQL text with the scale-independent
//! optimizer, auto-creates (and backfills) compiler-derived indexes, and
//! executes plans against the shared key/value store. It keeps no
//! per-request state — sessions are externally owned, so many simulated
//! application servers can share one `Database` handle.

use crate::cursor::Cursor;
use crate::exec::{ExecCtx, ExecError, ExecStrategy, QueryResult};
use crate::reference::ReferenceExecutor;
use crate::write::{WriteError, Writer};
use piql_analysis::ordered::RwLock;
use piql_analysis::rank;
use piql_core::ast::{ScalarExpr, Statement};
use piql_core::catalog::{Catalog, IndexDef, TableDef};
use piql_core::opt::{Compiled, OptError, Optimizer};
use piql_core::parser::{parse, ParseError};
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_kv::{KvStore, Session, SimCluster};
use std::fmt;
use std::sync::Arc;

/// Top-level database errors.
#[derive(Debug)]
pub enum DbError {
    Parse(ParseError),
    Catalog(piql_core::catalog::CatalogError),
    Compile(OptError),
    Exec(ExecError),
    Write(WriteError),
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Catalog(e) => write!(f, "{e}"),
            DbError::Compile(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
            DbError::Write(e) => write!(f, "{e}"),
            DbError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}
impl From<piql_core::catalog::CatalogError> for DbError {
    fn from(e: piql_core::catalog::CatalogError) -> Self {
        DbError::Catalog(e)
    }
}
impl From<OptError> for DbError {
    fn from(e: OptError) -> Self {
        DbError::Compile(e)
    }
}
impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}
impl From<WriteError> for DbError {
    fn from(e: WriteError) -> Self {
        DbError::Write(e)
    }
}

/// A compiled, index-provisioned, executable query.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub compiled: Compiled,
    /// Output column names.
    pub columns: Vec<String>,
}

/// The PIQL database engine, generic over its key/value backend: the
/// deterministic [`SimCluster`] for experiments (the default) or any other
/// [`KvStore`] — e.g. `piql_kv::LiveCluster` for wall-clock serving.
pub struct Database<S: KvStore = SimCluster> {
    cluster: Arc<S>,
    catalog: RwLock<Catalog>,
    optimizer: Optimizer,
}

impl<S: KvStore> Database<S> {
    pub fn new(cluster: Arc<S>) -> Self {
        Database {
            cluster,
            catalog: RwLock::new(rank::ENGINE_CATALOG, "engine.catalog", Catalog::new()),
            optimizer: Optimizer::scale_independent(),
        }
    }

    pub fn cluster(&self) -> &Arc<S> {
        &self.cluster
    }

    /// The backend as a trait object (what the executor and writer take).
    pub fn store(&self) -> &dyn KvStore {
        self.cluster.as_ref()
    }

    /// A point-in-time copy of the catalog (definitions are `Arc`-shared).
    pub fn catalog(&self) -> Catalog {
        self.catalog.read().clone()
    }

    // ---------------------------------------------------------------- DDL

    /// Execute a DDL statement (`CREATE TABLE` / `CREATE INDEX`).
    pub fn execute_ddl(&self, sql: &str) -> Result<(), DbError> {
        match parse(sql)? {
            Statement::CreateTable(stmt) => {
                let mut b = TableDef::builder(&stmt.name);
                for (name, ty, nullable) in &stmt.columns {
                    b = if *nullable {
                        b.column(name.clone(), *ty)
                    } else {
                        b.not_null_column(name.clone(), *ty)
                    };
                }
                let mut def = b.build();
                def.primary_key = stmt.primary_key.clone();
                def.foreign_keys = stmt.foreign_keys.clone();
                def.cardinality_constraints = stmt.cardinality_constraints.clone();
                self.create_table(def)
            }
            Statement::CreateIndex(stmt) => {
                let catalog = self.catalog.read().clone();
                let table = catalog
                    .table(&stmt.table)
                    .ok_or_else(|| {
                        DbError::Catalog(piql_core::catalog::CatalogError::UnknownTable(
                            stmt.table.clone(),
                        ))
                    })?
                    .clone();
                let def = IndexDef::new(&stmt.name, table.id, stmt.parts.clone());
                self.create_index_and_backfill(&table, def)?;
                Ok(())
            }
            _ => Err(DbError::Unsupported(
                "execute_ddl expects CREATE TABLE or CREATE INDEX".into(),
            )),
        }
    }

    /// Register a table. Cardinality constraints whose columns are not a
    /// primary-key prefix get an auto-created *enforcement index* so the
    /// write path can count them with one range request (§7.2).
    pub fn create_table(&self, def: TableDef) -> Result<(), DbError> {
        let id = self.catalog.write().create_table(def)?;
        let catalog = self.catalog.read().clone();
        let table = catalog.table_by_id(id).clone();
        for cc in &table.cardinality_constraints {
            if let Some(col) = cc.token_column() {
                let parts = vec![piql_core::catalog::IndexKeyPart::token(col.to_string())];
                let name = IndexDef::derived_name(&table, &parts);
                let def = IndexDef::new(name, table.id, parts);
                self.create_index_and_backfill(&table, def)?;
                continue;
            }
            let pk_prefix_ok = cc.columns.len() <= table.primary_key.len()
                && cc
                    .columns
                    .iter()
                    .zip(&table.primary_key)
                    .all(|(a, b)| a.eq_ignore_ascii_case(b));
            if !pk_prefix_ok {
                let parts = cc
                    .columns
                    .iter()
                    .map(|c| piql_core::catalog::IndexKeyPart::asc(c.clone()))
                    .collect::<Vec<_>>();
                let name = IndexDef::derived_name(&table, &parts);
                let def = IndexDef::new(name, table.id, parts);
                self.create_index_and_backfill(&table, def)?;
            }
        }
        Ok(())
    }

    fn create_index_and_backfill(&self, table: &TableDef, def: IndexDef) -> Result<(), DbError> {
        let id = self.catalog.write().create_index(def)?;
        let catalog = self.catalog.read().clone();
        let idx = catalog.index_by_id(id).clone();
        // make the namespace exist, then backfill from existing records
        let _ = self.store().namespace(&Catalog::index_namespace(&idx));
        let writer = Writer::new(self.store(), &catalog);
        writer.backfill_index(table, &idx)?;
        Ok(())
    }

    // -------------------------------------------------------------- query

    /// Compile a SELECT, creating and backfilling any indexes the plan
    /// requires (§5.3).
    pub fn prepare(&self, sql: &str) -> Result<Prepared, DbError> {
        self.prepare_with(sql, &self.optimizer)
    }

    /// Compile with a caller-supplied optimizer (e.g. the cost-based
    /// baseline).
    pub fn prepare_with(&self, sql: &str, optimizer: &Optimizer) -> Result<Prepared, DbError> {
        let stmt = piql_core::parser::parse_select(sql)?;
        self.prepare_stmt_with(&stmt, optimizer)
    }

    /// Compile an already-parsed SELECT (callers that rewrite the AST —
    /// e.g. the admission controller degrading a LIMIT — skip re-parsing).
    pub fn prepare_stmt(&self, stmt: &piql_core::ast::SelectStmt) -> Result<Prepared, DbError> {
        self.prepare_stmt_with(stmt, &self.optimizer)
    }

    /// [`Database::prepare_stmt`] with a caller-supplied optimizer.
    pub fn prepare_stmt_with(
        &self,
        stmt: &piql_core::ast::SelectStmt,
        optimizer: &Optimizer,
    ) -> Result<Prepared, DbError> {
        let catalog = self.catalog.read().clone();
        let compiled = optimizer.compile(&catalog, stmt)?;
        if compiled.required_indexes.is_empty() {
            return Ok(Prepared {
                columns: compiled.output.iter().map(|o| o.name.clone()).collect(),
                compiled,
            });
        }
        // provision derived indexes, then recompile against the updated
        // catalog so the plan references the registered definitions
        for idx in &compiled.required_indexes {
            let table = catalog.table_by_id(idx.table).clone();
            self.create_index_and_backfill(&table, idx.clone())?;
        }
        let catalog = self.catalog.read().clone();
        let compiled = optimizer.compile(&catalog, stmt)?;
        Ok(Prepared {
            columns: compiled.output.iter().map(|o| o.name.clone()).collect(),
            compiled,
        })
    }

    /// Execute a prepared query.
    pub fn execute(
        &self,
        session: &mut Session,
        prepared: &Prepared,
        params: &Params,
    ) -> Result<QueryResult, DbError> {
        self.execute_with(session, prepared, params, ExecStrategy::Parallel, None)
    }

    /// Execute with an explicit strategy and optional pagination cursor.
    pub fn execute_with(
        &self,
        session: &mut Session,
        prepared: &Prepared,
        params: &Params,
        strategy: ExecStrategy,
        cursor: Option<&Cursor>,
    ) -> Result<QueryResult, DbError> {
        let catalog = self.catalog.read().clone();
        let mut ctx = ExecCtx::new(self.store(), session, &catalog, params, strategy);
        ctx.produce_cursor = prepared.compiled.page_size.is_some();
        ctx.resume = cursor.map(|c| c.state.clone());
        let rows = ctx.eval(&prepared.compiled.physical);
        // never leak an operator tag past this query (an error return mid-
        // operator would otherwise mis-attribute the session's next rounds)
        ctx.session.op_tag = None;
        let rows = rows?;
        let next = ctx.next_cursor.take();
        Ok(QueryResult {
            rows,
            cursor: if prepared.compiled.page_size.is_some() {
                next.map(|state| Cursor { state })
            } else {
                None
            },
        })
    }

    /// One-shot: prepare + execute.
    pub fn query(
        &self,
        session: &mut Session,
        sql: &str,
        params: &Params,
    ) -> Result<QueryResult, DbError> {
        let prepared = self.prepare(sql)?;
        self.execute(session, &prepared, params)
    }

    // ---------------------------------------------------------------- DML

    /// Execute an INSERT/UPDATE/DELETE statement.
    pub fn execute_dml(
        &self,
        session: &mut Session,
        sql: &str,
        params: &Params,
    ) -> Result<(), DbError> {
        let catalog = self.catalog.read().clone();
        let writer = Writer::new(self.store(), &catalog);
        let resolve = |e: &ScalarExpr| -> Result<Value, DbError> {
            match e {
                ScalarExpr::Literal(v) => Ok(v.clone()),
                ScalarExpr::Param(p) => Ok(params
                    .scalar(p.index, &p.name)
                    .map_err(|e| DbError::Exec(ExecError::Param(e)))?
                    .clone()),
                ScalarExpr::Column(_) => Err(DbError::Unsupported(
                    "column references in DML values".into(),
                )),
            }
        };
        match parse(sql)? {
            Statement::Insert(stmt) => {
                let table = self.table_def(&stmt.table)?;
                let values: Vec<Value> =
                    stmt.values.iter().map(&resolve).collect::<Result<_, _>>()?;
                let row = if stmt.columns.is_empty() {
                    Tuple::new(values)
                } else {
                    if stmt.columns.len() != values.len() {
                        return Err(DbError::Write(WriteError::RowShape(
                            "column list and VALUES arity differ".into(),
                        )));
                    }
                    let mut row = vec![Value::Null; table.columns.len()];
                    for (col, v) in stmt.columns.iter().zip(values) {
                        let c = table.column_id(col).ok_or_else(|| {
                            DbError::Catalog(piql_core::catalog::CatalogError::UnknownColumn {
                                table: table.name.clone(),
                                column: col.clone(),
                            })
                        })?;
                        row[c] = v;
                    }
                    Tuple::new(row)
                };
                writer.insert(session, &table, &row)?;
                Ok(())
            }
            Statement::Update(stmt) => {
                let table = self.table_def(&stmt.table)?;
                let pk_values = extract_pk_filter(&table, &stmt.filter, params)?;
                let assignments: Vec<(String, Value)> = stmt
                    .assignments
                    .iter()
                    .map(|(c, e)| Ok::<_, DbError>((c.clone(), resolve(e)?)))
                    .collect::<Result<_, _>>()?;
                writer.update(session, &table, &pk_values, &assignments)?;
                Ok(())
            }
            Statement::Delete(stmt) => {
                let table = self.table_def(&stmt.table)?;
                let pk_values = extract_pk_filter(&table, &stmt.filter, params)?;
                writer.delete(session, &table, &pk_values)?;
                Ok(())
            }
            _ => Err(DbError::Unsupported(
                "execute_dml expects INSERT, UPDATE, or DELETE".into(),
            )),
        }
    }

    /// Programmatic single-row insert.
    pub fn insert_row(
        &self,
        session: &mut Session,
        table: &str,
        row: Tuple,
    ) -> Result<(), DbError> {
        let table = self.table_def(table)?;
        let catalog = self.catalog.read().clone();
        let writer = Writer::new(self.store(), &catalog);
        writer.insert(session, &table, &row)?;
        Ok(())
    }

    /// Programmatic delete by primary key values.
    pub fn delete_row(
        &self,
        session: &mut Session,
        table: &str,
        pk_values: &[Value],
    ) -> Result<bool, DbError> {
        let table = self.table_def(table)?;
        let catalog = self.catalog.read().clone();
        let writer = Writer::new(self.store(), &catalog);
        Ok(writer.delete(session, &table, pk_values)?)
    }

    /// Garbage-collect dangling secondary-index entries of a table (§7.2).
    /// Returns the number of entries collected.
    pub fn gc_indexes(&self, session: &mut Session, table: &str) -> Result<u64, DbError> {
        let table = self.table_def(table)?;
        let catalog = self.catalog.read().clone();
        let writer = Writer::new(self.store(), &catalog);
        Ok(writer.gc_indexes(session, &table)?)
    }

    /// Untimed bulk load (experiment setup); maintains index entries.
    pub fn bulk_load(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<u64, DbError> {
        let table = self.table_def(table)?;
        let catalog = self.catalog.read().clone();
        let writer = Writer::new(self.store(), &catalog);
        Ok(writer.bulk_load(&table, rows)?)
    }

    /// Run a SELECT through the naive reference executor (testing oracle).
    pub fn reference_query(&self, sql: &str, params: &Params) -> Result<Vec<Tuple>, DbError> {
        let stmt = piql_core::parser::parse_select(sql)?;
        let catalog = self.catalog.read().clone();
        let r = ReferenceExecutor::new(self.store(), &catalog);
        r.run(&stmt, params).map_err(DbError::Exec)
    }

    fn table_def(&self, name: &str) -> Result<Arc<TableDef>, DbError> {
        self.catalog.read().table(name).cloned().ok_or_else(|| {
            DbError::Catalog(piql_core::catalog::CatalogError::UnknownTable(
                name.to_string(),
            ))
        })
    }
}

/// Extract primary-key values from a conjunction of `pk_col = value`
/// predicates — the only WHERE shape UPDATE/DELETE support (every write is
/// a bounded single-record operation).
fn extract_pk_filter(
    table: &TableDef,
    filter: &[piql_core::ast::Predicate],
    params: &Params,
) -> Result<Vec<Value>, DbError> {
    use piql_core::ast::{CompareOp, Predicate};
    let mut by_col: std::collections::BTreeMap<usize, Value> = Default::default();
    for pred in filter {
        match pred {
            Predicate::Compare {
                left,
                op: CompareOp::Eq,
                right,
            } => {
                let col = table.column_id(&left.column).ok_or_else(|| {
                    DbError::Catalog(piql_core::catalog::CatalogError::UnknownColumn {
                        table: table.name.clone(),
                        column: left.column.clone(),
                    })
                })?;
                let v = match right {
                    ScalarExpr::Literal(v) => v.clone(),
                    ScalarExpr::Param(p) => params
                        .scalar(p.index, &p.name)
                        .map_err(|e| DbError::Exec(ExecError::Param(e)))?
                        .clone(),
                    ScalarExpr::Column(_) => {
                        return Err(DbError::Unsupported(
                            "column = column predicates in DML".into(),
                        ))
                    }
                };
                by_col.insert(col, v);
            }
            _ => {
                return Err(DbError::Unsupported(
                    "UPDATE/DELETE require `pk = value` equality predicates".into(),
                ))
            }
        }
    }
    table
        .primary_key_ids()
        .iter()
        .map(|c| {
            by_col.get(c).cloned().ok_or_else(|| {
                DbError::Unsupported(format!(
                    "UPDATE/DELETE must pin the full primary key of '{}'",
                    table.name
                ))
            })
        })
        .collect()
}
