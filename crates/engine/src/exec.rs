//! The PIQL execution engine (§7).
//!
//! Operators are evaluated bottom-up over materialized (bounded!) tuple
//! batches; what varies is how remote operators turn their work into
//! key/value-store rounds. The three strategies of §8.5:
//!
//! * **Lazy** — one entry per request, one request per round (a traditional
//!   iterator pulling tuple-at-a-time through a high-latency store);
//! * **Simple** — batch requests using the compiler's limit hints, but one
//!   request per round (no intra-operator parallelism);
//! * **Parallel** — batched requests, and every request of an operator
//!   issued in the same parallel round.
//!
//! A round is executed by the backend at the *slowest* request, not the
//! sum (see the [`KvStore::execute_round`] contract): `SimCluster` models
//! that in virtual time, and `LiveCluster` fans the round out over its
//! shared worker pool — so `Parallel`'s speedup is real wall-clock
//! overlap on the live path, not just round batching.

use crate::cursor::{Cursor, CursorState};
use crate::keys;
use piql_core::ast::AggFunc;
use piql_core::catalog::{Catalog, IndexDef, TableDef};
use piql_core::codec::key::{prefix_upper_bound, Dir};
use piql_core::opt::UNBOUNDED_SCAN_BATCH;
use piql_core::plan::params::{ParamError, Params};
use piql_core::plan::physical::{
    IndexRef, KeySource, PhysAggregate, PhysicalPlan, RangeSpec, ScanLimit, ScanSpec,
    SortedJoinSpec,
};
use piql_core::plan::{BoundPredicate, Operand};
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_kv::{KvRequest, KvResponse, KvStore, LiveOpKind, NsId, OpTag, ResponseMismatch, Session};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Remote-operator execution strategy (§8.5, Figure 12).
///
/// The compiler's request bounds ([`piql_core::plan::physical::QueryBounds`])
/// describe executors that respect limit hints — `Simple` and `Parallel`.
/// `Lazy` deliberately ignores hints (one entry per request) and may issue
/// up to `tuples` extra requests; it exists as the paper's baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    Lazy,
    Simple,
    #[default]
    Parallel,
}

impl ExecStrategy {
    pub fn name(self) -> &'static str {
        match self {
            ExecStrategy::Lazy => "LazyExecutor",
            ExecStrategy::Simple => "SimpleExecutor",
            ExecStrategy::Parallel => "ParallelExecutor",
        }
    }
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    Param(ParamError),
    Key(keys::KeyError),
    Cursor(String),
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Param(e) => write!(f, "{e}"),
            ExecError::Key(e) => write!(f, "{e}"),
            ExecError::Cursor(e) => write!(f, "cursor: {e}"),
            ExecError::Internal(e) => write!(f, "internal: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ParamError> for ExecError {
    fn from(e: ParamError) -> Self {
        ExecError::Param(e)
    }
}

impl From<keys::KeyError> for ExecError {
    fn from(e: keys::KeyError) -> Self {
        ExecError::Key(e)
    }
}

impl From<ResponseMismatch> for ExecError {
    fn from(e: ResponseMismatch) -> Self {
        ExecError::Internal(e.to_string())
    }
}

/// Result of one query (or one page of a paginated query).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub rows: Vec<Tuple>,
    /// Cursor to fetch the next page (paginated queries only; `None` when
    /// exhausted).
    pub cursor: Option<Cursor>,
}

/// The execution context threaded through operator evaluation.
pub struct ExecCtx<'a> {
    pub store: &'a dyn KvStore,
    pub session: &'a mut Session,
    pub catalog: &'a Catalog,
    pub params: &'a Params,
    pub strategy: ExecStrategy,
    /// Resume point (pagination).
    pub resume: Option<CursorState>,
    /// New resume point produced by the root remote operator.
    pub next_cursor: Option<CursorState>,
    /// Ask the root remote operator to record a resume point even on the
    /// first page (set for paginated queries).
    pub produce_cursor: bool,
}

impl<'a> ExecCtx<'a> {
    pub fn new(
        store: &'a dyn KvStore,
        session: &'a mut Session,
        catalog: &'a Catalog,
        params: &'a Params,
        strategy: ExecStrategy,
    ) -> Self {
        ExecCtx {
            store,
            session,
            catalog,
            params,
            strategy,
            resume: None,
            next_cursor: None,
            produce_cursor: false,
        }
    }

    fn table(&self, index: &IndexRef) -> Arc<TableDef> {
        self.catalog.table_by_id(index.table).clone()
    }

    fn ns_of_index(&self, table: &TableDef, index: &IndexRef) -> NsId {
        match &index.secondary {
            None => self.store.namespace(&Catalog::table_namespace(table)),
            Some(idx) => self.store.namespace(&Catalog::index_namespace(idx)),
        }
    }

    fn primary_ns(&self, table: &TableDef) -> NsId {
        self.store.namespace(&Catalog::table_namespace(table))
    }

    fn resolve(&self, op: &Operand) -> Result<Value, ExecError> {
        Ok(op.resolve(self.params)?.clone())
    }

    /// Tag the session with the remote operator about to issue rounds, so
    /// wall-clock backends can attribute round latencies to the §6.1 model
    /// key (op kind, α_c, α_j, β) for online training.
    fn tag_op(&mut self, op: LiveOpKind, alpha_c: u64, alpha_j: u64, beta: u64) {
        self.session.op_tag = Some(OpTag {
            op,
            alpha_c: alpha_c.min(u32::MAX as u64) as u32,
            alpha_j: alpha_j.min(u32::MAX as u64) as u32,
            beta: beta.min(u32::MAX as u64) as u32,
        });
    }

    fn clear_op_tag(&mut self) {
        self.session.op_tag = None;
    }

    /// Evaluate a plan to completion.
    pub fn eval(&mut self, plan: &PhysicalPlan) -> Result<Vec<Tuple>, ExecError> {
        match plan {
            PhysicalPlan::ParamSource { param, max, .. } => {
                let values = self
                    .params
                    .collection(param.index, &param.name, Some(*max))?;
                Ok(values.iter().map(|v| Tuple::new(vec![v.clone()])).collect())
            }
            PhysicalPlan::IndexScan { spec, .. } => self.eval_scan(spec),
            PhysicalPlan::IndexFKJoin {
                child,
                key,
                table,
                row_bytes,
                ..
            } => {
                let children = self.eval(child)?;
                self.eval_fk_join(children, *table, key, *row_bytes)
            }
            PhysicalPlan::SortedIndexJoin { child, spec, .. } => {
                let children = self.eval(child)?;
                self.eval_sorted_join(children, spec)
            }
            PhysicalPlan::LocalSelection {
                child, predicates, ..
            } => {
                let rows = self.eval(child)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if BoundPredicate::eval_all(predicates, &row, self.params)? {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            PhysicalPlan::LocalSort { child, keys, .. } => {
                let mut rows = self.eval(child)?;
                sort_rows(&mut rows, keys);
                Ok(rows)
            }
            PhysicalPlan::LocalStop { child, count, .. } => {
                let mut rows = self.eval(child)?;
                rows.truncate(*count as usize);
                Ok(rows)
            }
            PhysicalPlan::LocalProject { child, columns, .. } => {
                let rows = self.eval(child)?;
                Ok(rows
                    .into_iter()
                    .map(|r| Tuple::new(columns.iter().map(|(p, _)| r[*p].clone()).collect()))
                    .collect())
            }
            PhysicalPlan::LocalAggregate {
                child,
                group_by,
                aggs,
                ..
            } => {
                let rows = self.eval(child)?;
                Ok(aggregate_rows(rows, group_by, aggs))
            }
        }
    }

    // ------------------------------------------------------------- scans

    fn eval_scan(&mut self, spec: &ScanSpec) -> Result<Vec<Tuple>, ExecError> {
        let table = self.table(&spec.index);
        let ns = self.ns_of_index(&table, &spec.index);

        // probe prefix
        let (prefix, range_dir) = self.scan_prefix(&table, spec)?;
        let range = self.resolve_range(spec.range.as_ref())?;
        let (mut start, mut end) = range_to_bytes(&prefix, &range, range_dir);

        // pagination resume
        if let Some(CursorState::ScanAfter { last_key }) = self.resume.clone() {
            if spec.reverse {
                end = Some(last_key);
            } else {
                let mut s = last_key;
                s.push(0);
                start = s;
            }
        }

        let scan_alpha = match &spec.limit {
            ScanLimit::Bounded { count, .. } => *count,
            ScanLimit::Unbounded { estimate } => *estimate,
        };
        self.tag_op(LiveOpKind::IndexScan, scan_alpha, 1, spec.row_bytes);
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        match (&spec.limit, self.strategy) {
            (ScanLimit::Bounded { count, .. }, ExecStrategy::Lazy) => {
                // tuple-at-a-time
                while (entries.len() as u64) < *count {
                    let resp = self.round_one(KvRequest::GetRange {
                        ns,
                        start: start.clone(),
                        end: end.clone(),
                        limit: Some(1),
                        reverse: spec.reverse,
                    });
                    let batch = resp.into_entries()?;
                    match batch.into_iter().next() {
                        Some((k, v)) => {
                            advance_bounds(&mut start, &mut end, &k, spec.reverse);
                            entries.push((k, v));
                        }
                        None => break,
                    }
                }
            }
            (ScanLimit::Bounded { count, .. }, _) => {
                // the §7.1 prefetch: one request fetches the whole hint
                let resp = self.round_one(KvRequest::GetRange {
                    ns,
                    start,
                    end,
                    limit: Some(*count),
                    reverse: spec.reverse,
                });
                entries = resp.into_entries()?;
            }
            (ScanLimit::Unbounded { .. }, strategy) => {
                // cost-based plans page until exhausted
                let batch = match strategy {
                    ExecStrategy::Lazy => 1,
                    _ => UNBOUNDED_SCAN_BATCH,
                };
                loop {
                    let resp = self.round_one(KvRequest::GetRange {
                        ns,
                        start: start.clone(),
                        end: end.clone(),
                        limit: Some(batch),
                        reverse: spec.reverse,
                    });
                    let chunk = resp.into_entries()?;
                    let n = chunk.len() as u64;
                    if let Some((k, _)) = chunk.last() {
                        advance_bounds(&mut start, &mut end, k, spec.reverse);
                    }
                    entries.extend(chunk);
                    if n < batch {
                        break;
                    }
                }
            }
        }

        self.clear_op_tag();

        // cursor for the next page
        if self.resume.is_some() || self.next_cursor_wanted() {
            self.next_cursor = entries.last().map(|(k, _)| CursorState::ScanAfter {
                last_key: k.clone(),
            });
        }

        self.materialize(&table, &spec.index, entries, spec.deref, spec.row_bytes)
            .map(|rows| rows.into_iter().map(|(_, t)| t).collect())
    }

    /// Whether the caller asked us to produce a cursor (set by execute()).
    fn next_cursor_wanted(&self) -> bool {
        self.produce_cursor
    }

    // ------------------------------------------------------------- joins

    fn eval_fk_join(
        &mut self,
        children: Vec<Tuple>,
        table_id: piql_core::catalog::TableId,
        key: &[KeySource],
        row_bytes: u64,
    ) -> Result<Vec<Tuple>, ExecError> {
        let table = self.catalog.table_by_id(table_id).clone();
        let ns = self.primary_ns(&table);
        let mut probe_keys = Vec::with_capacity(children.len());
        for child in &children {
            let vals: Vec<Value> = key
                .iter()
                .map(|ks| match ks {
                    KeySource::Const(op) => self.resolve(op),
                    KeySource::ChildField(p) => Ok(child[*p].clone()),
                })
                .collect::<Result<_, _>>()?;
            probe_keys.push(keys::primary_key_from_values(&vals)?);
        }
        self.tag_op(
            LiveOpKind::IndexFKJoin,
            probe_keys.len() as u64,
            1,
            row_bytes,
        );
        let responses = self.issue_gets(ns, probe_keys)?;
        self.clear_op_tag();
        let mut out = Vec::with_capacity(children.len());
        for (child, resp) in children.into_iter().zip(responses) {
            if let KvResponse::Value(Some(bytes)) = resp {
                let row = keys::decode_row(&table, &bytes)?;
                out.push(child.concat(&row));
            }
            // missing row: dangling reference -> inner join drops it
        }
        Ok(out)
    }

    fn eval_sorted_join(
        &mut self,
        children: Vec<Tuple>,
        spec: &SortedJoinSpec,
    ) -> Result<Vec<Tuple>, ExecError> {
        let table = self.table(&spec.index);
        let ns = self.ns_of_index(&table, &spec.index);

        // per-child probe prefixes
        let mut prefixes = Vec::with_capacity(children.len());
        for child in &children {
            let mut prefix = Vec::new();
            let parts_dirs = self.index_dirs(&table, &spec.index);
            for (i, ks) in spec.prefix.iter().enumerate() {
                let v = match ks {
                    KeySource::Const(op) => {
                        let val = self.resolve(op)?;
                        // token probes encode the canonical token
                        if i == 0 && self.index_has_token(&spec.index) {
                            match val.as_str().and_then(piql_core::text::search_token) {
                                Some(tok) => Value::Varchar(tok),
                                None => val,
                            }
                        } else {
                            val
                        }
                    }
                    KeySource::ChildField(p) => child[*p].clone(),
                };
                keys::encode_probe_component(&mut prefix, &v, parts_dirs[i])?;
            }
            prefixes.push(prefix);
        }

        // resume state
        let resume = match self.resume.clone() {
            Some(CursorState::SortedJoinAfter { suffix, full_key }) => Some((suffix, full_key)),
            Some(CursorState::ScanAfter { .. }) => {
                return Err(ExecError::Cursor(
                    "cursor does not match this query's plan".into(),
                ))
            }
            None => None,
        };

        // fetch up to per_key entries per probe
        let mut per_child_entries: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
        let requests: Vec<KvRequest> = prefixes
            .iter()
            .map(|prefix| {
                let (mut start, mut end) = (prefix.clone(), prefix_upper_bound(prefix));
                if let Some((suffix, _)) = &resume {
                    // conservative: include the cursor position, filter below
                    let mut at = prefix.clone();
                    at.extend_from_slice(suffix);
                    if spec.reverse {
                        end = prefix_upper_bound(&at).or(end);
                    } else {
                        start = at;
                    }
                }
                KvRequest::GetRange {
                    ns,
                    start,
                    end,
                    limit: Some(spec.per_key),
                    reverse: spec.reverse,
                }
            })
            .collect();
        self.tag_op(
            LiveOpKind::SortedIndexJoin,
            prefixes.len() as u64,
            spec.per_key,
            spec.row_bytes,
        );
        match self.strategy {
            ExecStrategy::Parallel => {
                let responses = self.round(requests);
                for resp in responses {
                    per_child_entries.push(resp.into_entries()?);
                }
            }
            ExecStrategy::Simple => {
                for req in requests {
                    let resp = self.round_one(req);
                    per_child_entries.push(resp.into_entries()?);
                }
            }
            ExecStrategy::Lazy => {
                // per probe: one entry per request
                for (req, prefix) in requests.into_iter().zip(&prefixes) {
                    let KvRequest::GetRange {
                        ns,
                        mut start,
                        mut end,
                        reverse,
                        ..
                    } = req
                    else {
                        unreachable!()
                    };
                    let mut got = Vec::new();
                    while (got.len() as u64) < spec.per_key {
                        let resp = self.round_one(KvRequest::GetRange {
                            ns,
                            start: start.clone(),
                            end: end.clone(),
                            limit: Some(1),
                            reverse,
                        });
                        let batch = resp.into_entries()?;
                        match batch.into_iter().next() {
                            Some((k, v)) => {
                                advance_bounds(&mut start, &mut end, &k, reverse);
                                got.push((k, v));
                            }
                            None => break,
                        }
                    }
                    let _ = prefix;
                    per_child_entries.push(got);
                }
            }
        }
        self.clear_op_tag();

        // merge: tag entries with (suffix, full key) and k-way merge
        struct Item {
            child_idx: usize,
            suffix: Vec<u8>,
            key: Vec<u8>,
            value: Vec<u8>,
        }
        let mut items: Vec<Item> = Vec::new();
        for (ci, entries) in per_child_entries.into_iter().enumerate() {
            let plen = prefixes[ci].len();
            for (k, v) in entries {
                let suffix = k[plen.min(k.len())..].to_vec();
                items.push(Item {
                    child_idx: ci,
                    suffix,
                    key: k,
                    value: v,
                });
            }
        }
        // emission order: by suffix bytes (already direction-encoded by the
        // index codec), forward or reverse; ties by full key
        if spec.reverse {
            items.sort_by(|a, b| b.suffix.cmp(&a.suffix).then(b.key.cmp(&a.key)));
        } else {
            items.sort_by(|a, b| a.suffix.cmp(&b.suffix).then(a.key.cmp(&b.key)));
        }
        // resume filter: drop everything at or before the cursor position
        if let Some((cs, ck)) = &resume {
            items.retain(|it| {
                let cmp = if spec.reverse {
                    (cs.as_slice(), ck.as_slice()).cmp(&(it.suffix.as_slice(), it.key.as_slice()))
                } else {
                    (it.suffix.as_slice(), it.key.as_slice()).cmp(&(cs.as_slice(), ck.as_slice()))
                };
                cmp == std::cmp::Ordering::Greater
            });
        }
        if let Some(limit) = spec.emit_limit {
            items.truncate(limit as usize);
        }

        // cursor
        if self.resume.is_some() || self.next_cursor_wanted() {
            self.next_cursor = items.last().map(|it| CursorState::SortedJoinAfter {
                suffix: it.suffix.clone(),
                full_key: it.key.clone(),
            });
        }

        // materialize right rows (deref when needed), attach child tuples
        let entries: Vec<(Vec<u8>, Vec<u8>)> = items
            .iter()
            .map(|it| (it.key.clone(), it.value.clone()))
            .collect();
        let rows = self.materialize(&table, &spec.index, entries, spec.deref, spec.row_bytes)?;
        let mut out = Vec::with_capacity(rows.len());
        for (it, (_, right)) in items.iter().zip(rows) {
            out.push(children[it.child_idx].concat(&right));
        }
        Ok(out)
    }

    // ------------------------------------------------------------- shared

    /// Build the scan's probe prefix and return the direction of the key
    /// part a range (if any) applies to.
    fn scan_prefix(&self, table: &TableDef, spec: &ScanSpec) -> Result<(Vec<u8>, Dir), ExecError> {
        let dirs = self.index_dirs(table, &spec.index);
        let mut prefix = Vec::new();
        for (i, op) in spec.eq_prefix.iter().enumerate() {
            let v = self.resolve(op)?;
            let v = if i == 0 && self.index_has_token(&spec.index) {
                match v.as_str().and_then(piql_core::text::search_token) {
                    Some(tok) => Value::Varchar(tok),
                    None => v,
                }
            } else {
                v
            };
            keys::encode_probe_component(&mut prefix, &v, dirs[i])?;
        }
        let range_dir = dirs.get(spec.eq_prefix.len()).copied().unwrap_or(Dir::Asc);
        Ok((prefix, range_dir))
    }

    fn index_dirs(&self, table: &TableDef, index: &IndexRef) -> Vec<Dir> {
        match &index.secondary {
            None => vec![Dir::Asc; table.primary_key.len()],
            Some(idx) => idx.full_key_dirs(table),
        }
    }

    fn index_has_token(&self, index: &IndexRef) -> bool {
        index
            .secondary
            .as_ref()
            .map(IndexDef::has_token_part)
            .unwrap_or(false)
    }

    fn resolve_range(&self, range: Option<&RangeSpec>) -> Result<ResolvedRange, ExecError> {
        let Some(r) = range else {
            return Ok(ResolvedRange::default());
        };
        let conv = |b: &Option<piql_core::plan::physical::RangeBound>| -> Result<_, ExecError> {
            Ok(match b {
                Some(rb) => Some((self.resolve(&rb.operand)?, rb.inclusive)),
                None => None,
            })
        };
        Ok(ResolvedRange {
            low: conv(&r.low)?,
            high: conv(&r.high)?,
        })
    }

    /// Turn index entries into full-arity right rows, dereferencing through
    /// the primary namespace when the index is not covering.
    fn materialize(
        &mut self,
        table: &TableDef,
        index: &IndexRef,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        deref: bool,
        row_bytes: u64,
    ) -> Result<Vec<(Vec<u8>, Tuple)>, ExecError> {
        match &index.secondary {
            None => entries
                .into_iter()
                .map(|(k, v)| Ok((k, keys::decode_row(table, &v)?)))
                .collect(),
            Some(idx) if !deref => entries
                .into_iter()
                .map(|(k, _)| {
                    let row = keys::row_from_index_key(table, idx, &k)?;
                    Ok((k, row))
                })
                .collect(),
            Some(idx) => {
                let primary = self.primary_ns(table);
                let mut pk_keys = Vec::with_capacity(entries.len());
                for (k, _) in &entries {
                    let pk_vals = keys::pk_values_from_index_key(table, idx, k)?;
                    pk_keys.push(keys::primary_key_from_values(&pk_vals)?);
                }
                // non-covering index dereference: modeled (and therefore
                // sampled) as an IndexFKJoin of the fetched entries — the
                // same shape `plan_thetas` predicts for it
                self.tag_op(LiveOpKind::IndexFKJoin, pk_keys.len() as u64, 1, row_bytes);
                let responses = self.issue_gets(primary, pk_keys)?;
                self.clear_op_tag();
                let mut out = Vec::with_capacity(entries.len());
                for ((k, _), resp) in entries.into_iter().zip(responses) {
                    if let KvResponse::Value(Some(bytes)) = resp {
                        let row = keys::decode_row(table, &bytes)?;
                        // the §7.2 write order can leave entries whose
                        // record moved on (crash between record update and
                        // stale-entry deletion); re-verify the entry is
                        // still derivable from the record before emitting
                        if keys::index_entry_keys(table, idx, &row)?.contains(&k) {
                            out.push((k, row));
                        }
                    }
                    // missing: dangling index entry awaiting GC (§7.2); skip
                }
                Ok(out)
            }
        }
    }

    /// Issue a batch of gets per the strategy.
    fn issue_gets(&mut self, ns: NsId, keys: Vec<Vec<u8>>) -> Result<Vec<KvResponse>, ExecError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        Ok(match self.strategy {
            ExecStrategy::Parallel => self.round(
                keys.into_iter()
                    .map(|key| KvRequest::Get { ns, key })
                    .collect(),
            ),
            _ => keys
                .into_iter()
                .map(|key| self.round_one(KvRequest::Get { ns, key }))
                .collect(),
        })
    }

    fn round(&mut self, requests: Vec<KvRequest>) -> Vec<KvResponse> {
        self.store.execute_round(self.session, requests)
    }

    fn round_one(&mut self, request: KvRequest) -> KvResponse {
        self.round(vec![request]).remove(0)
    }
}

/// Resolved scan range in value space.
#[derive(Debug, Default, Clone)]
struct ResolvedRange {
    low: Option<(Value, bool)>,
    high: Option<(Value, bool)>,
}

/// Convert a value-space range into byte-space `[start, end)` under the key
/// part's direction.
fn range_to_bytes(prefix: &[u8], range: &ResolvedRange, dir: Dir) -> (Vec<u8>, Option<Vec<u8>>) {
    // under Desc encoding, the value-space low bound becomes the byte-space
    // high bound and vice versa
    let (byte_low, byte_high) = match dir {
        Dir::Asc => (range.low.clone(), range.high.clone()),
        Dir::Desc => (range.high.clone(), range.low.clone()),
    };
    let enc = |v: &Value| {
        let mut k = prefix.to_vec();
        piql_core::codec::key::encode_component(&mut k, v, dir).expect("key-compatible value");
        k
    };
    let start = match &byte_low {
        None => prefix.to_vec(),
        Some((v, inclusive)) => {
            let k = enc(v);
            if *inclusive {
                k
            } else {
                prefix_upper_bound(&k).unwrap_or(k)
            }
        }
    };
    let end = match &byte_high {
        None => prefix_upper_bound(prefix),
        Some((v, inclusive)) => {
            let k = enc(v);
            if *inclusive {
                prefix_upper_bound(&k)
            } else {
                Some(k)
            }
        }
    };
    (start, end)
}

/// After consuming entry `k`, tighten the bounds for the next fetch.
fn advance_bounds(start: &mut Vec<u8>, end: &mut Option<Vec<u8>>, k: &[u8], reverse: bool) {
    if reverse {
        *end = Some(k.to_vec());
    } else {
        let mut s = k.to_vec();
        s.push(0);
        *start = s;
    }
}

/// Stable multi-key sort honoring per-key direction.
pub fn sort_rows(rows: &mut [Tuple], keys: &[(usize, Dir)]) {
    rows.sort_by(|a, b| {
        for (pos, dir) in keys {
            let ord = a[*pos].total_cmp(&b[*pos]);
            let ord = if *dir == Dir::Desc {
                ord.reverse()
            } else {
                ord
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Group-by + aggregates over a bounded input (§7.1: computed client-side).
pub fn aggregate_rows(rows: Vec<Tuple>, group_by: &[usize], aggs: &[PhysAggregate]) -> Vec<Tuple> {
    #[derive(Default, Clone)]
    struct Acc {
        count: u64,
        sum: f64,
        sum_is_float: bool,
        min: Option<Value>,
        max: Option<Value>,
    }
    let mut groups: BTreeMap<Vec<u8>, (Vec<Value>, Vec<Acc>)> = BTreeMap::new();
    for row in &rows {
        let key_vals: Vec<Value> = group_by.iter().map(|&p| row[p].clone()).collect();
        let key = piql_core::codec::row::encode_tuple(&Tuple::new(key_vals.clone()));
        let entry = groups
            .entry(key)
            .or_insert_with(|| (key_vals, vec![Acc::default(); aggs.len()]));
        for (acc, agg) in entry.1.iter_mut().zip(aggs) {
            let val = agg.arg.map(|p| &row[p]);
            match agg.func {
                AggFunc::Count => {
                    if agg.arg.is_none() || !val.unwrap().is_null() {
                        acc.count += 1;
                    }
                }
                AggFunc::Sum | AggFunc::Avg => {
                    if let Some(v) = val {
                        if let Some(f) = v.as_f64() {
                            acc.sum += f;
                            acc.count += 1;
                            acc.sum_is_float = matches!(v, Value::Double(_));
                        }
                    }
                }
                AggFunc::Min => {
                    if let Some(v) = val {
                        if !v.is_null()
                            && acc
                                .min
                                .as_ref()
                                .map(|m| v.total_cmp(m) == std::cmp::Ordering::Less)
                                .unwrap_or(true)
                        {
                            acc.min = Some(v.clone());
                        }
                    }
                }
                AggFunc::Max => {
                    if let Some(v) = val {
                        if !v.is_null()
                            && acc
                                .max
                                .as_ref()
                                .map(|m| v.total_cmp(m) == std::cmp::Ordering::Greater)
                                .unwrap_or(true)
                        {
                            acc.max = Some(v.clone());
                        }
                    }
                }
            }
        }
    }
    // empty input with no grouping: one row of "zero" aggregates
    if groups.is_empty() && group_by.is_empty() {
        let vals: Vec<Value> = aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::Count => Value::BigInt(0),
                _ => Value::Null,
            })
            .collect();
        return vec![Tuple::new(vals)];
    }
    groups
        .into_values()
        .map(|(mut key_vals, accs)| {
            for (acc, agg) in accs.iter().zip(aggs) {
                let v = match agg.func {
                    AggFunc::Count => Value::BigInt(acc.count as i64),
                    AggFunc::Sum => {
                        if acc.count == 0 {
                            Value::Null
                        } else if acc.sum_is_float {
                            Value::Double(acc.sum)
                        } else {
                            Value::BigInt(acc.sum as i64)
                        }
                    }
                    AggFunc::Avg => {
                        if acc.count == 0 {
                            Value::Null
                        } else {
                            Value::Double(acc.sum / acc.count as f64)
                        }
                    }
                    AggFunc::Min => acc.min.clone().unwrap_or(Value::Null),
                    AggFunc::Max => acc.max.clone().unwrap_or(Value::Null),
                };
                key_vals.push(v);
            }
            Tuple::new(key_vals)
        })
        .collect()
}
