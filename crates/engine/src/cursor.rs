//! Serializable client-side pagination cursors (§4.1).
//!
//! A paginated query returns a cursor that can be serialized, shipped to
//! the user with the page, and later sent back to *any* application server
//! to resume — the application tier stays stateless. The state is tiny:
//! the last index key returned by the uncompleted scan (plus, for merged
//! sorted joins, the sort suffix that orders the merge).

use std::fmt;

/// Resume state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CursorState {
    /// Root IndexScan: resume strictly after this index key.
    ScanAfter { last_key: Vec<u8> },
    /// Root SortedIndexJoin: resume strictly after this emission position.
    /// `suffix` is the index-key bytes after the probe prefix (the sort
    /// columns + pk), comparable across join keys; `full_key` breaks ties.
    SortedJoinAfter { suffix: Vec<u8>, full_key: Vec<u8> },
}

/// A pagination cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cursor {
    pub state: CursorState,
}

/// Cursor (de)serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CursorError(pub String);

impl fmt::Display for CursorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cursor: {}", self.0)
    }
}

impl std::error::Error for CursorError {}

const VERSION: u8 = 1;
const TAG_SCAN: u8 = 1;
const TAG_SORTED: u8 = 2;

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    let mut n = b.len() as u64;
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
    out.extend_from_slice(b);
}

fn read_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, CursorError> {
    let mut n = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| CursorError("truncated length".into()))?;
        *pos += 1;
        n |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift >= 64 {
            return Err(CursorError("length overflow".into()));
        }
    }
    let n = n as usize;
    let out = buf
        .get(*pos..*pos + n)
        .ok_or_else(|| CursorError("truncated payload".into()))?
        .to_vec();
    *pos += n;
    Ok(out)
}

impl Cursor {
    /// Serialize for shipping to the client.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![VERSION];
        match &self.state {
            CursorState::ScanAfter { last_key } => {
                out.push(TAG_SCAN);
                write_bytes(&mut out, last_key);
            }
            CursorState::SortedJoinAfter { suffix, full_key } => {
                out.push(TAG_SORTED);
                write_bytes(&mut out, suffix);
                write_bytes(&mut out, full_key);
            }
        }
        out
    }

    /// Deserialize a client-provided cursor.
    pub fn from_bytes(buf: &[u8]) -> Result<Cursor, CursorError> {
        if buf.first() != Some(&VERSION) {
            return Err(CursorError("unsupported version".into()));
        }
        let mut pos = 2;
        match buf.get(1) {
            Some(&TAG_SCAN) => Ok(Cursor {
                state: CursorState::ScanAfter {
                    last_key: read_bytes(buf, &mut pos)?,
                },
            }),
            Some(&TAG_SORTED) => {
                let suffix = read_bytes(buf, &mut pos)?;
                let full_key = read_bytes(buf, &mut pos)?;
                Ok(Cursor {
                    state: CursorState::SortedJoinAfter { suffix, full_key },
                })
            }
            _ => Err(CursorError("unknown tag".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cursor_roundtrip() {
        let c = Cursor {
            state: CursorState::ScanAfter {
                last_key: vec![1, 2, 3, 0, 255],
            },
        };
        assert_eq!(Cursor::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn sorted_cursor_roundtrip() {
        let c = Cursor {
            state: CursorState::SortedJoinAfter {
                suffix: vec![9; 300],
                full_key: vec![7; 10],
            },
        };
        assert_eq!(Cursor::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Cursor::from_bytes(&[]).is_err());
        assert!(Cursor::from_bytes(&[1, 9]).is_err());
        assert!(Cursor::from_bytes(&[2, 1, 0]).is_err());
        assert!(Cursor::from_bytes(&[1, 1, 5, 1]).is_err());
    }
}
