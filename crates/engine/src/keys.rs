//! Key construction: from rows and probe values to store keys.
//!
//! Tables map to a primary namespace (`encode(pk) -> row codec bytes`);
//! each secondary index maps to its own namespace
//! (`encode(declared parts ++ pk) -> ()`), with `TOKEN(col)` parts expanded
//! to one entry per token of the column's text (§7.3).

use piql_core::catalog::{IndexDef, IndexKind, TableDef};
use piql_core::codec::key::{self, Dir};
use piql_core::text;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use std::fmt;

/// Engine-level errors around key/row handling.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyError {
    Codec(String),
    RowShape(String),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::Codec(e) => write!(f, "key codec: {e}"),
            KeyError::RowShape(e) => write!(f, "row shape: {e}"),
        }
    }
}

impl std::error::Error for KeyError {}

impl From<key::KeyCodecError> for KeyError {
    fn from(e: key::KeyCodecError) -> Self {
        KeyError::Codec(e.to_string())
    }
}

/// Primary-key bytes of a row.
pub fn primary_key_of_row(table: &TableDef, row: &Tuple) -> Result<Vec<u8>, KeyError> {
    let vals: Vec<Value> = table
        .primary_key_ids()
        .iter()
        .map(|&c| row[c].clone())
        .collect();
    if vals.iter().any(Value::is_null) {
        return Err(KeyError::RowShape(format!(
            "primary key of {} contains NULL",
            table.name
        )));
    }
    Ok(key::encode_key_asc(&vals)?)
}

/// Primary-key bytes from explicit values (probe side).
pub fn primary_key_from_values(values: &[Value]) -> Result<Vec<u8>, KeyError> {
    Ok(key::encode_key_asc(values)?)
}

/// All index-entry keys of a row under `index` (several when a TOKEN part
/// expands).
pub fn index_entry_keys(
    table: &TableDef,
    index: &IndexDef,
    row: &Tuple,
) -> Result<Vec<Vec<u8>>, KeyError> {
    let parts = index.full_key_parts(table);
    // token expansion: cartesian over token parts (in practice one)
    let mut variants: Vec<Vec<u8>> = vec![Vec::new()];
    for part in &parts {
        let col = table.column_id(part.kind.column_name()).ok_or_else(|| {
            KeyError::RowShape(format!("unknown column {}", part.kind.column_name()))
        })?;
        match &part.kind {
            IndexKind::Column(_) => {
                for buf in &mut variants {
                    key::encode_component(buf, &row[col], part.dir)?;
                }
            }
            IndexKind::Token(_) => {
                let texts = match row[col].as_str() {
                    Some(s) => text::tokenize(s),
                    None => Vec::new(),
                };
                if texts.is_empty() {
                    // no tokens -> no entries for this row
                    return Ok(Vec::new());
                }
                let mut expanded = Vec::with_capacity(variants.len() * texts.len());
                for buf in &variants {
                    for tok in &texts {
                        let mut b = buf.clone();
                        key::encode_component(&mut b, &Value::Varchar(tok.clone()), part.dir)?;
                        expanded.push(b);
                    }
                }
                variants = expanded;
            }
        }
    }
    variants.sort();
    variants.dedup();
    Ok(variants)
}

/// Append one probe component with the part's direction.
pub fn encode_probe_component(buf: &mut Vec<u8>, value: &Value, dir: Dir) -> Result<(), KeyError> {
    key::encode_component(buf, value, dir)?;
    Ok(())
}

/// Decode a full-row tuple from a primary-index entry's value bytes.
pub fn decode_row(table: &TableDef, bytes: &[u8]) -> Result<Tuple, KeyError> {
    let t =
        piql_core::codec::row::decode_tuple(bytes).map_err(|e| KeyError::Codec(e.to_string()))?;
    if t.len() != table.columns.len() {
        return Err(KeyError::RowShape(format!(
            "row for {} has {} values, expected {}",
            table.name,
            t.len(),
            table.columns.len()
        )));
    }
    Ok(t)
}

/// Encode a full-row tuple.
pub fn encode_row(row: &Tuple) -> Vec<u8> {
    piql_core::codec::row::encode_tuple(row)
}

/// Reconstruct a (partial) full-arity row from a covering index entry key.
/// Columns not present in the key come back as NULL; the planner only
/// allows covering scans when every needed column is in the key.
pub fn row_from_index_key(
    table: &TableDef,
    index: &IndexDef,
    key_bytes: &[u8],
) -> Result<Tuple, KeyError> {
    let parts = index.full_key_parts(table);
    let types = index.full_key_types(table);
    let dirs = index.full_key_dirs(table);
    let (values, _) = key::decode_key(key_bytes, &types, &dirs)?;
    let mut row = vec![Value::Null; table.columns.len()];
    for ((part, ty), value) in parts.iter().zip(&types).zip(values) {
        let _ = ty;
        if let IndexKind::Column(name) = &part.kind {
            let col = table.column_id(name).expect("validated");
            row[col] = value;
        }
    }
    Ok(Tuple::new(row))
}

/// Extract the primary-key values from an index entry key (the trailing
/// components plus any pk columns earlier in the key).
pub fn pk_values_from_index_key(
    table: &TableDef,
    index: &IndexDef,
    key_bytes: &[u8],
) -> Result<Vec<Value>, KeyError> {
    let row = row_from_index_key(table, index, key_bytes)?;
    Ok(table
        .primary_key_ids()
        .iter()
        .map(|&c| row[c].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_core::catalog::{IndexKeyPart, TableId};
    use piql_core::value::DataType;

    fn thoughts() -> TableDef {
        let mut t = TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(32))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build();
        t.id = TableId(0);
        t
    }

    #[test]
    fn primary_key_roundtrip() {
        let t = thoughts();
        let row = Tuple::new(vec![
            Value::Varchar("bob".into()),
            Value::Timestamp(42),
            Value::Varchar("hi".into()),
        ]);
        let k = primary_key_of_row(&t, &row).unwrap();
        let k2 =
            primary_key_from_values(&[Value::Varchar("bob".into()), Value::Timestamp(42)]).unwrap();
        assert_eq!(k, k2);
        let null_row = Tuple::new(vec![Value::Null, Value::Timestamp(1), Value::Null]);
        assert!(primary_key_of_row(&t, &null_row).is_err());
    }

    #[test]
    fn token_index_expands_per_token() {
        let t = thoughts();
        let idx = IndexDef::new("tok", t.id, vec![IndexKeyPart::token("text")]);
        let row = Tuple::new(vec![
            Value::Varchar("bob".into()),
            Value::Timestamp(1),
            Value::Varchar("hello wonderful world".into()),
        ]);
        let keys = index_entry_keys(&t, &idx, &row).unwrap();
        assert_eq!(keys.len(), 3, "one entry per token");
        // every entry decodes back to the same pk
        for k in &keys {
            let pk = pk_values_from_index_key(&t, &idx, k).unwrap();
            assert_eq!(pk, vec![Value::Varchar("bob".into()), Value::Timestamp(1)]);
        }
        // empty text -> no entries
        let row2 = Tuple::new(vec![
            Value::Varchar("bob".into()),
            Value::Timestamp(2),
            Value::Varchar("--".into()),
        ]);
        assert!(index_entry_keys(&t, &idx, &row2).unwrap().is_empty());
    }

    #[test]
    fn covering_reconstruction() {
        let t = thoughts();
        let idx = IndexDef::on_columns("by_ts", t.id, &[("timestamp", Dir::Desc)]);
        let row = Tuple::new(vec![
            Value::Varchar("amy".into()),
            Value::Timestamp(99),
            Value::Varchar("zzz".into()),
        ]);
        let keys = index_entry_keys(&t, &idx, &row).unwrap();
        assert_eq!(keys.len(), 1);
        let rec = row_from_index_key(&t, &idx, &keys[0]).unwrap();
        assert_eq!(rec[0], Value::Varchar("amy".into()));
        assert_eq!(rec[1], Value::Timestamp(99));
        assert_eq!(rec[2], Value::Null, "text not in key");
    }

    #[test]
    fn desc_index_orders_newest_first() {
        let t = thoughts();
        let idx = IndexDef::on_columns(
            "owner_ts_desc",
            t.id,
            &[("owner", Dir::Asc), ("timestamp", Dir::Desc)],
        );
        let mk = |ts: i64| {
            Tuple::new(vec![
                Value::Varchar("amy".into()),
                Value::Timestamp(ts),
                Value::Varchar("x".into()),
            ])
        };
        let k_new = &index_entry_keys(&t, &idx, &mk(100)).unwrap()[0];
        let k_old = &index_entry_keys(&t, &idx, &mk(50)).unwrap()[0];
        assert!(k_new < k_old);
    }

    #[test]
    fn row_codec_roundtrip() {
        let t = thoughts();
        let row = Tuple::new(vec![
            Value::Varchar("amy".into()),
            Value::Timestamp(7),
            Value::Null,
        ]);
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&t, &bytes).unwrap(), row);
        assert!(decode_row(&t, &encode_row(&Tuple::new(vec![Value::Int(1)]))).is_err());
    }
}
