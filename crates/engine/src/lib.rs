//! # piql-engine
//!
//! The PIQL execution engine (§7 of the paper): iterator-model physical
//! operators over a distributed key/value store, three execution strategies
//! (Lazy / Simple / Parallel, §8.5), serializable client-side pagination
//! cursors (§4.1), and a write path that maintains secondary indexes and
//! enforces cardinality/uniqueness constraints on an eventually consistent
//! store (§7.2). The [`Database`] facade ties the compiler from `piql-core`
//! to the simulated cluster from `piql-kv`.

pub mod cursor;
pub mod database;
pub mod exec;
pub mod keys;
pub mod reference;
pub mod write;

pub use cursor::{Cursor, CursorState};
pub use database::{Database, DbError, Prepared};
pub use exec::{ExecCtx, ExecError, ExecStrategy, QueryResult};
pub use reference::ReferenceExecutor;
pub use write::{WriteError, Writer};
