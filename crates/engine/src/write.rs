//! The write path: index maintenance and constraint enforcement (§7.2).
//!
//! The store is eventually consistent, so the engine orders writes to fail
//! safe:
//!
//! * **Insert/update**: new secondary-index entries first, then the record
//!   (via test-and-set for uniqueness), then deletion of stale entries. A
//!   crash can leave *dangling* index entries — readers skip them and they
//!   are garbage-collectable — but never a record that indexes cannot find.
//! * **Cardinality enforcement**: optimistically insert, then issue a
//!   count-range over the constraint's enforcement prefix; if the count
//!   exceeds the limit, undo the insert and fail. Concurrent inserts may
//!   transiently overshoot (the paper accepts this).
//! * **Uniqueness**: the record put is a test-and-set expecting absence.

use crate::exec::ExecError;
use crate::keys;
use piql_core::catalog::{CardinalityConstraint, Catalog, IndexDef, TableDef};
use piql_core::codec::key::prefix_upper_bound;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_kv::{KvRequest, KvResponse, KvStore, NsId, Session};
use std::fmt;
use std::sync::Arc;

/// Write-path errors.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteError {
    DuplicateKey {
        table: String,
    },
    NotFound {
        table: String,
    },
    CardinalityExceeded {
        table: String,
        constraint: String,
        limit: u64,
    },
    RowShape(String),
    Exec(String),
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::DuplicateKey { table } => {
                write!(f, "duplicate primary key in table '{table}'")
            }
            WriteError::NotFound { table } => write!(f, "row not found in table '{table}'"),
            WriteError::CardinalityExceeded {
                table,
                constraint,
                limit,
            } => write!(
                f,
                "insert into '{table}' violates CARDINALITY LIMIT {limit} ({constraint})"
            ),
            WriteError::RowShape(e) => write!(f, "{e}"),
            WriteError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WriteError {}

impl From<keys::KeyError> for WriteError {
    fn from(e: keys::KeyError) -> Self {
        WriteError::RowShape(e.to_string())
    }
}

impl From<ExecError> for WriteError {
    fn from(e: ExecError) -> Self {
        WriteError::Exec(e.to_string())
    }
}

/// First response of a round, or a malformed-round error when the backend
/// answered with the wrong arity.
fn take_first(resp: &mut Vec<piql_kv::KvResponse>) -> Result<piql_kv::KvResponse, WriteError> {
    if resp.is_empty() {
        return Err(WriteError::Exec(
            "malformed round: backend returned no responses".into(),
        ));
    }
    Ok(resp.remove(0))
}

/// The write-path engine.
pub struct Writer<'a> {
    pub store: &'a dyn KvStore,
    pub catalog: &'a Catalog,
}

impl<'a> Writer<'a> {
    pub fn new(store: &'a dyn KvStore, catalog: &'a Catalog) -> Self {
        Writer { store, catalog }
    }

    fn primary_ns(&self, table: &TableDef) -> NsId {
        self.store.namespace(&Catalog::table_namespace(table))
    }

    fn index_ns(&self, index: &IndexDef) -> NsId {
        self.store.namespace(&Catalog::index_namespace(index))
    }

    /// Validate and coerce a full row for `table`.
    pub fn conform_row(table: &TableDef, row: &Tuple) -> Result<Tuple, WriteError> {
        if row.len() != table.columns.len() {
            return Err(WriteError::RowShape(format!(
                "table '{}' expects {} values, got {}",
                table.name,
                table.columns.len(),
                row.len()
            )));
        }
        let mut vals = Vec::with_capacity(row.len());
        for (col, v) in table.columns.iter().zip(row.values()) {
            if v.is_null() && !col.nullable {
                return Err(WriteError::RowShape(format!(
                    "column '{}' of table '{}' is NOT NULL",
                    col.name, table.name
                )));
            }
            let cv = v.coerce(col.ty).ok_or_else(|| {
                WriteError::RowShape(format!(
                    "value {v} does not fit column '{}' {}",
                    col.name, col.ty
                ))
            })?;
            vals.push(cv);
        }
        Ok(Tuple::new(vals))
    }

    /// Insert one row, maintaining all secondary indexes and constraints.
    pub fn insert(
        &self,
        session: &mut Session,
        table: &TableDef,
        row: &Tuple,
    ) -> Result<(), WriteError> {
        let row = Self::conform_row(table, row)?;
        let pk = keys::primary_key_of_row(table, &row)?;
        let row_bytes = keys::encode_row(&row);
        let primary = self.primary_ns(table);
        let indexes = self.catalog.indexes_for_table(table.id);

        // 1. secondary index entries first (one parallel round)
        let mut index_puts = Vec::new();
        for idx in &indexes {
            let ns = self.index_ns(idx);
            for key in keys::index_entry_keys(table, idx, &row)? {
                index_puts.push(KvRequest::Put {
                    ns,
                    key,
                    value: Vec::new(),
                });
            }
        }
        if !index_puts.is_empty() {
            self.store.execute_round(session, index_puts.clone());
        }

        // 2. the record, with a test-and-set enforcing pk uniqueness
        let resp = self.store.execute_round(
            session,
            vec![KvRequest::TestAndSet {
                ns: primary,
                key: pk.clone(),
                expect: None,
                value: Some(row_bytes),
            }],
        );
        if let Some(KvResponse::TasResult { success: false, .. }) = resp.first() {
            // undo the index entries we just wrote
            self.delete_index_entries(session, table, &row)?;
            return Err(WriteError::DuplicateKey {
                table: table.name.clone(),
            });
        }

        // 3. cardinality enforcement: count after insert, undo on overflow
        for cc in &table.cardinality_constraints {
            let count = self.constraint_count(session, table, cc, &row)?;
            if count > cc.limit {
                self.delete_index_entries(session, table, &row)?;
                self.store.execute_round(
                    session,
                    vec![KvRequest::Delete {
                        ns: primary,
                        key: pk.clone(),
                    }],
                );
                return Err(WriteError::CardinalityExceeded {
                    table: table.name.clone(),
                    constraint: cc.columns.join(", "),
                    limit: cc.limit,
                });
            }
        }
        Ok(())
    }

    /// Update a row identified by its primary-key values. Assignments may
    /// not touch pk columns.
    pub fn update(
        &self,
        session: &mut Session,
        table: &TableDef,
        pk_values: &[Value],
        assignments: &[(String, Value)],
    ) -> Result<(), WriteError> {
        for (col, _) in assignments {
            if table
                .primary_key
                .iter()
                .any(|p| p.eq_ignore_ascii_case(col))
            {
                return Err(WriteError::RowShape(format!(
                    "cannot update primary-key column '{col}'"
                )));
            }
        }
        let primary = self.primary_ns(table);
        let pk = keys::primary_key_from_values(pk_values)?;
        // optimistic TAS loop against concurrent writers
        for _attempt in 0..8 {
            let resp = self.store.execute_round(
                session,
                vec![KvRequest::Get {
                    ns: primary,
                    key: pk.clone(),
                }],
            );
            let old_bytes = match resp.first() {
                Some(KvResponse::Value(Some(b))) => b.clone(),
                _ => {
                    return Err(WriteError::NotFound {
                        table: table.name.clone(),
                    })
                }
            };
            let old_row = keys::decode_row(table, &old_bytes)?;
            let mut new_row = old_row.clone();
            for (col, val) in assignments {
                let c = table.column_id(col).ok_or_else(|| {
                    WriteError::RowShape(format!(
                        "unknown column '{col}' in table '{}'",
                        table.name
                    ))
                })?;
                new_row.set(c, val.clone());
            }
            let new_row = Self::conform_row(table, &new_row)?;
            let new_bytes = keys::encode_row(&new_row);

            // 1. fresh index entries
            let indexes = self.catalog.indexes_for_table(table.id);
            let mut adds = Vec::new();
            let mut stale = Vec::new();
            for idx in &indexes {
                let ns = self.index_ns(idx);
                let old_keys = keys::index_entry_keys(table, idx, &old_row)?;
                let new_keys = keys::index_entry_keys(table, idx, &new_row)?;
                for k in &new_keys {
                    if !old_keys.contains(k) {
                        adds.push(KvRequest::Put {
                            ns,
                            key: k.clone(),
                            value: Vec::new(),
                        });
                    }
                }
                for k in old_keys {
                    if !new_keys.contains(&k) {
                        stale.push(KvRequest::Delete { ns, key: k });
                    }
                }
            }
            if !adds.is_empty() {
                self.store.execute_round(session, adds);
            }
            // 2. the record, conditionally
            let resp = self.store.execute_round(
                session,
                vec![KvRequest::TestAndSet {
                    ns: primary,
                    key: pk.clone(),
                    expect: Some(old_bytes),
                    value: Some(new_bytes),
                }],
            );
            let success = matches!(
                resp.first(),
                Some(KvResponse::TasResult { success: true, .. })
            );
            if success {
                // 3. stale entries last
                if !stale.is_empty() {
                    self.store.execute_round(session, stale);
                }
                return Ok(());
            }
            // lost the race: the adds we made are dangling (GC-able); retry
        }
        Err(WriteError::Exec(format!(
            "update of '{}' lost too many test-and-set races",
            table.name
        )))
    }

    /// Delete a row by primary key. Returns whether a row existed.
    pub fn delete(
        &self,
        session: &mut Session,
        table: &TableDef,
        pk_values: &[Value],
    ) -> Result<bool, WriteError> {
        let primary = self.primary_ns(table);
        let pk = keys::primary_key_from_values(pk_values)?;
        let resp = self.store.execute_round(
            session,
            vec![KvRequest::Get {
                ns: primary,
                key: pk.clone(),
            }],
        );
        let old_bytes = match resp.first() {
            Some(KvResponse::Value(Some(b))) => b.clone(),
            _ => return Ok(false),
        };
        let old_row = keys::decode_row(table, &old_bytes)?;
        // record first, then index entries (dangling entries are safe)
        self.store.execute_round(
            session,
            vec![KvRequest::Delete {
                ns: primary,
                key: pk,
            }],
        );
        self.delete_index_entries(session, table, &old_row)?;
        Ok(true)
    }

    /// Bulk-load rows without timing (experiment setup). Index entries are
    /// written too; constraints are trusted, not checked.
    pub fn bulk_load(
        &self,
        table: &TableDef,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<u64, WriteError> {
        let primary = self.primary_ns(table);
        let indexes = self.catalog.indexes_for_table(table.id);
        let index_ns: Vec<(Arc<IndexDef>, NsId)> = indexes
            .into_iter()
            .map(|i| {
                let ns = self.index_ns(&i);
                (i, ns)
            })
            .collect();
        let mut n = 0;
        for row in rows {
            let row = Self::conform_row(table, &row)?;
            let pk = keys::primary_key_of_row(table, &row)?;
            self.store.bulk_put(primary, pk, keys::encode_row(&row));
            for (idx, ns) in &index_ns {
                for key in keys::index_entry_keys(table, idx, &row)? {
                    self.store.bulk_put(*ns, key, Vec::new());
                }
            }
            n += 1;
        }
        Ok(n)
    }

    /// Garbage-collect dangling index entries of one table (§7.2): the
    /// ordered write path can leave index entries whose record no longer
    /// exists (or no longer matches) after a crash mid-update. Readers skip
    /// them; this sweep removes them. Returns the number collected.
    pub fn gc_indexes(&self, session: &mut Session, table: &TableDef) -> Result<u64, WriteError> {
        let primary = self.primary_ns(table);
        let mut collected = 0u64;
        for idx in self.catalog.indexes_for_table(table.id) {
            let ns = self.index_ns(&idx);
            let mut start: Vec<u8> = Vec::new();
            loop {
                let mut resp = self.store.execute_round(
                    session,
                    vec![KvRequest::GetRange {
                        ns,
                        start: start.clone(),
                        end: None,
                        limit: Some(512),
                        reverse: false,
                    }],
                );
                let entries = take_first(&mut resp)?
                    .into_entries()
                    .map_err(|e| WriteError::Exec(e.to_string()))?;
                let len = entries.len();
                if len == 0 {
                    break;
                }
                // fetch the referenced records in one parallel round
                let mut pk_keys = Vec::with_capacity(entries.len());
                for (k, _) in &entries {
                    let pk_vals = keys::pk_values_from_index_key(table, &idx, k)?;
                    pk_keys.push(keys::primary_key_from_values(&pk_vals)?);
                }
                let gets: Vec<KvRequest> = pk_keys
                    .iter()
                    .map(|key| KvRequest::Get {
                        ns: primary,
                        key: key.clone(),
                    })
                    .collect();
                let rows = self.store.execute_round(session, gets);
                let mut dels = Vec::new();
                for ((entry_key, _), row) in entries.iter().zip(rows) {
                    let dangling = match row {
                        KvResponse::Value(Some(bytes)) => {
                            // entry must still be derivable from the record
                            let rec = keys::decode_row(table, &bytes)?;
                            !keys::index_entry_keys(table, &idx, &rec)?.contains(entry_key)
                        }
                        _ => true, // record gone entirely
                    };
                    if dangling {
                        dels.push(KvRequest::Delete {
                            ns,
                            key: entry_key.clone(),
                        });
                    }
                }
                collected += dels.len() as u64;
                if !dels.is_empty() {
                    self.store.execute_round(session, dels);
                }
                start = entries.last().unwrap().0.clone();
                start.push(0);
                if len < 512 {
                    break;
                }
            }
        }
        Ok(collected)
    }

    /// Build (backfill) one index from the table's current records —
    /// offline index construction for compiler-derived indexes.
    pub fn backfill_index(&self, table: &TableDef, index: &IndexDef) -> Result<u64, WriteError> {
        let primary = self.primary_ns(table);
        let ns = self.index_ns(index);
        let mut session = Session::new();
        let mut start: Vec<u8> = Vec::new();
        let mut n = 0;
        loop {
            let mut resp = self.store.execute_round(
                &mut session,
                vec![KvRequest::GetRange {
                    ns: primary,
                    start: start.clone(),
                    end: None,
                    limit: Some(1024),
                    reverse: false,
                }],
            );
            let entries = take_first(&mut resp)?
                .into_entries()
                .map_err(|e| WriteError::Exec(e.to_string()))?;
            let len = entries.len();
            for (k, v) in &entries {
                let row = keys::decode_row(table, v)?;
                for key in keys::index_entry_keys(table, index, &row)? {
                    self.store.bulk_put(ns, key, Vec::new());
                    n += 1;
                }
                start = k.clone();
                start.push(0);
            }
            if len < 1024 {
                break;
            }
        }
        Ok(n)
    }

    fn delete_index_entries(
        &self,
        session: &mut Session,
        table: &TableDef,
        row: &Tuple,
    ) -> Result<(), WriteError> {
        let mut dels = Vec::new();
        for idx in self.catalog.indexes_for_table(table.id) {
            let ns = self.index_ns(&idx);
            for key in keys::index_entry_keys(table, &idx, row)? {
                dels.push(KvRequest::Delete { ns, key });
            }
        }
        if !dels.is_empty() {
            self.store.execute_round(session, dels);
        }
        Ok(())
    }

    /// Count rows sharing this row's values on the constraint columns.
    /// Requires the constraint columns to be a prefix of the primary key or
    /// of some secondary index (the *enforcement index*, which
    /// [`crate::database::Database`] auto-creates at table definition time).
    fn constraint_count(
        &self,
        session: &mut Session,
        table: &TableDef,
        cc: &CardinalityConstraint,
        row: &Tuple,
    ) -> Result<u64, WriteError> {
        // TOKEN(col) constraints: count the token index prefix for every
        // token of the new value; report the worst token.
        if let Some(col) = cc.token_column() {
            let c = table.column_id(col).expect("validated");
            let tokens = match row[c].as_str() {
                Some(s) => piql_core::text::tokenize(s),
                None => Vec::new(),
            };
            if tokens.is_empty() {
                return Ok(0);
            }
            let idx = self
                .catalog
                .indexes_for_table(table.id)
                .into_iter()
                .find(|i| {
                    i.key
                        .first()
                        .map(|p| {
                            p.kind.is_token() && p.kind.column_name().eq_ignore_ascii_case(col)
                        })
                        .unwrap_or(false)
                })
                .ok_or_else(|| {
                    WriteError::Exec(format!(
                        "no enforcement index for CARDINALITY LIMIT (TOKEN({col})) on '{}'",
                        table.name
                    ))
                })?;
            let ns = self.index_ns(&idx);
            let counts: Vec<KvRequest> = tokens
                .iter()
                .map(|t| {
                    let mut p = Vec::new();
                    keys::encode_probe_component(
                        &mut p,
                        &Value::Varchar(t.clone()),
                        Default::default(),
                    )
                    .expect("varchar is key-compatible");
                    let end = prefix_upper_bound(&p);
                    KvRequest::CountRange { ns, start: p, end }
                })
                .collect();
            let resps = self.store.execute_round(session, counts);
            let mut worst = 0;
            for r in &resps {
                worst = worst.max(r.count().map_err(|e| WriteError::Exec(e.to_string()))?);
            }
            return Ok(worst);
        }

        let vals: Vec<Value> = cc
            .columns
            .iter()
            .map(|c| row[table.column_id(c).expect("validated")].clone())
            .collect();

        // primary prefix?
        let pk_prefix_ok = cc.columns.len() <= table.primary_key.len()
            && cc
                .columns
                .iter()
                .zip(&table.primary_key)
                .all(|(a, b)| a.eq_ignore_ascii_case(b));
        let (ns, prefix) = if pk_prefix_ok {
            let mut p = Vec::new();
            for v in &vals {
                keys::encode_probe_component(&mut p, v, Default::default())?;
            }
            (self.primary_ns(table), p)
        } else {
            // find an index whose leading parts are the constraint columns
            let idx = self
                .catalog
                .indexes_for_table(table.id)
                .into_iter()
                .find(|i| {
                    i.key.len() >= cc.columns.len()
                        && i.key.iter().zip(&cc.columns).all(|(part, col)| {
                            !part.kind.is_token()
                                && part.kind.column_name().eq_ignore_ascii_case(col)
                        })
                })
                .ok_or_else(|| {
                    WriteError::Exec(format!(
                        "no enforcement index for CARDINALITY LIMIT ({}) on '{}'",
                        cc.columns.join(", "),
                        table.name
                    ))
                })?;
            let dirs = idx.full_key_dirs(table);
            let mut p = Vec::new();
            for (i, v) in vals.iter().enumerate() {
                keys::encode_probe_component(&mut p, v, dirs[i])?;
            }
            (self.index_ns(&idx), p)
        };
        let end = prefix_upper_bound(&prefix);
        let mut resp = self.store.execute_round(
            session,
            vec![KvRequest::CountRange {
                ns,
                start: prefix,
                end,
            }],
        );
        take_first(&mut resp)?
            .count()
            .map_err(|e| WriteError::Exec(e.to_string()))
    }
}
