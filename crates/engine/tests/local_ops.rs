//! Unit tests for the engine's local operators (sort, aggregates) — the
//! client-side half of §7.1.

use piql_core::ast::AggFunc;
use piql_core::codec::key::Dir;
use piql_core::plan::physical::PhysAggregate;
use piql_core::tuple;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::exec::{aggregate_rows, sort_rows};

fn agg(func: AggFunc, arg: Option<usize>) -> PhysAggregate {
    PhysAggregate {
        func,
        arg,
        alias: "x".into(),
    }
}

#[test]
fn sort_is_stable_multi_key_with_directions() {
    let mut rows = vec![
        tuple!["b", 2, "first"],
        tuple!["a", 2, "second"],
        tuple!["a", 1, "third"],
        tuple!["b", 2, "fourth"],
    ];
    sort_rows(&mut rows, &[(0, Dir::Asc), (1, Dir::Desc)]);
    assert_eq!(
        rows,
        vec![
            tuple!["a", 2, "second"],
            tuple!["a", 1, "third"],
            tuple!["b", 2, "first"], // stability: original order of ties
            tuple!["b", 2, "fourth"],
        ]
    );
}

#[test]
fn aggregates_over_groups() {
    let rows = vec![
        tuple!["a", 10],
        tuple!["a", 30],
        tuple!["b", 5],
        Tuple::new(vec![Value::Varchar("b".into()), Value::Null]),
    ];
    let out = aggregate_rows(
        rows,
        &[0],
        &[
            agg(AggFunc::Count, None),
            agg(AggFunc::Count, Some(1)),
            agg(AggFunc::Sum, Some(1)),
            agg(AggFunc::Avg, Some(1)),
            agg(AggFunc::Min, Some(1)),
            agg(AggFunc::Max, Some(1)),
        ],
    );
    assert_eq!(out.len(), 2);
    // group "a": count*=2, count(v)=2, sum=40, avg=20, min=10, max=30
    assert_eq!(out[0][0], Value::Varchar("a".into()));
    assert_eq!(out[0][1], Value::BigInt(2));
    assert_eq!(out[0][2], Value::BigInt(2));
    assert_eq!(out[0][3], Value::BigInt(40));
    assert_eq!(out[0][4], Value::Double(20.0));
    assert_eq!(out[0][5], Value::Int(10));
    assert_eq!(out[0][6], Value::Int(30));
    // group "b": NULL ignored by value aggregates but counted by COUNT(*)
    assert_eq!(out[1][1], Value::BigInt(2));
    assert_eq!(out[1][2], Value::BigInt(1));
    assert_eq!(out[1][3], Value::BigInt(5));
    assert_eq!(out[1][5], Value::Int(5));
}

#[test]
fn global_aggregate_on_empty_input_yields_zero_count() {
    let out = aggregate_rows(
        Vec::new(),
        &[],
        &[agg(AggFunc::Count, None), agg(AggFunc::Sum, Some(0))],
    );
    assert_eq!(out, vec![Tuple::new(vec![Value::BigInt(0), Value::Null])]);
    // grouped aggregate on empty input yields no rows
    let out = aggregate_rows(Vec::new(), &[0], &[agg(AggFunc::Count, None)]);
    assert!(out.is_empty());
}

#[test]
fn double_sums_stay_double() {
    let rows = vec![
        Tuple::new(vec![Value::Double(1.5)]),
        Tuple::new(vec![Value::Double(2.25)]),
    ];
    let out = aggregate_rows(rows, &[], &[agg(AggFunc::Sum, Some(0))]);
    assert_eq!(out[0][0], Value::Double(3.75));
}
