//! Engine integration tests: the compiler's plans executed against the
//! simulated cluster, checked against the naive reference executor.

use piql_core::plan::params::Params;
use piql_core::tuple;
use piql_core::value::Value;
use piql_engine::{Cursor, Database, DbError, ExecStrategy, WriteError};
use piql_kv::{ClusterConfig, Session, SimCluster};
use std::sync::Arc;

const SCADR_DDL: &[&str] = &[
    "CREATE TABLE users ( \
       username VARCHAR(32) NOT NULL, \
       home_town VARCHAR(64), \
       PRIMARY KEY (username) )",
    "CREATE TABLE subscriptions ( \
       owner VARCHAR(32) NOT NULL, \
       target VARCHAR(32) NOT NULL, \
       approved BOOL, \
       PRIMARY KEY (owner, target), \
       FOREIGN KEY (target) REFERENCES users, \
       FOREIGN KEY (owner) REFERENCES users, \
       CARDINALITY LIMIT 10 (owner) )",
    "CREATE TABLE thoughts ( \
       owner VARCHAR(32) NOT NULL, \
       timestamp TIMESTAMP NOT NULL, \
       text VARCHAR(140), \
       PRIMARY KEY (owner, timestamp), \
       FOREIGN KEY (owner) REFERENCES users )",
];

const THOUGHTSTREAM: &str = "SELECT thoughts.* \
    FROM subscriptions s JOIN thoughts \
    WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
    ORDER BY thoughts.timestamp DESC LIMIT 10";

fn scadr_db(nodes: usize) -> Database {
    let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(nodes)));
    let db = Database::new(cluster);
    for ddl in SCADR_DDL {
        db.execute_ddl(ddl).unwrap();
    }
    db
}

/// Deterministic small SCADr population: `n_users` users, each following
/// users (u+1..u+follows), each posting `posts` thoughts.
fn populate(db: &Database, n_users: usize, follows: usize, posts: usize) {
    let uname = |i: usize| format!("user{i:04}");
    db.bulk_load(
        "users",
        (0..n_users).map(|i| tuple![uname(i).as_str(), "Berkeley"]),
    )
    .unwrap();
    db.bulk_load(
        "subscriptions",
        (0..n_users)
            .flat_map(|i| {
                (1..=follows).map(move |d| {
                    let target = uname((i + d) % n_users);
                    let approved = d % 2 == 1; // every other subscription approved
                    Tup(uname(i), target, approved)
                })
            })
            .map(|Tup(o, t, a)| tuple![o.as_str(), t.as_str(), a]),
    )
    .unwrap();
    db.bulk_load(
        "thoughts",
        (0..n_users)
            .flat_map(|i| {
                (0..posts).map(move |p| {
                    (
                        uname(i),
                        1_000_000i64 + (i * 131 + p * 7919) as i64,
                        format!("thought {p} of user {i}"),
                    )
                })
            })
            .map(|(o, ts, txt)| tuple![o.as_str(), Value::Timestamp(ts), txt.as_str()]),
    )
    .unwrap();
    db.cluster().rebalance();
}

struct Tup(String, String, bool);

#[test]
fn thoughtstream_matches_reference() {
    let db = scadr_db(4);
    populate(&db, 40, 7, 12);
    let prepared = db.prepare(THOUGHTSTREAM).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0003".into()));
    let mut session = Session::new();
    let result = db.execute(&mut session, &prepared, &params).unwrap();
    let expected = db.reference_query(THOUGHTSTREAM, &params).unwrap();
    assert_eq!(result.rows.len(), 10);
    assert_eq!(result.rows, expected, "optimized plan == naive semantics");
    // ordered by timestamp desc
    assert!(result
        .rows
        .windows(2)
        .all(|w| w[0][1].as_i64() >= w[1][1].as_i64()));
}

#[test]
fn all_strategies_agree_and_parallel_is_fastest() {
    let mut cfg = ClusterConfig::default().with_nodes(6).with_seed(12);
    cfg.interference = piql_kv::InterferenceConfig::none();
    let cluster = Arc::new(SimCluster::new(cfg));
    let db = Database::new(cluster);
    for ddl in SCADR_DDL {
        db.execute_ddl(ddl).unwrap();
    }
    populate(&db, 60, 9, 10);
    let prepared = db.prepare(THOUGHTSTREAM).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0007".into()));

    let mut timings = Vec::new();
    let mut results = Vec::new();
    for strategy in [
        ExecStrategy::Lazy,
        ExecStrategy::Simple,
        ExecStrategy::Parallel,
    ] {
        let mut session = Session::new();
        let t0 = session.begin();
        let r = db
            .execute_with(&mut session, &prepared, &params, strategy, None)
            .unwrap();
        timings.push(session.elapsed_since(t0));
        results.push(r.rows);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert!(
        timings[2] < timings[1] && timings[1] < timings[0],
        "Parallel < Simple < Lazy, got {timings:?}"
    );
}

#[test]
fn measured_requests_stay_within_static_bound() {
    let db = scadr_db(4);
    populate(&db, 50, 10, 15);
    for (sql, p0) in [
        (THOUGHTSTREAM, "user0001"),
        (
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 5",
            "user0002",
        ),
        ("SELECT * FROM users WHERE username = <u>", "user0003"),
        (
            "SELECT u.* FROM subscriptions s JOIN users u \
             WHERE u.username = s.target AND s.owner = <uname>",
            "user0004",
        ),
    ] {
        let prepared = db.prepare(sql).unwrap();
        let mut params = Params::new();
        params.set(0, Value::Varchar(p0.into()));
        let mut session = Session::new();
        db.execute(&mut session, &prepared, &params).unwrap();
        assert!(
            session.stats.logical_requests <= prepared.compiled.bounds.requests,
            "{sql}: measured {} > bound {}",
            session.stats.logical_requests,
            prepared.compiled.bounds.requests
        );
        assert!(
            session.stats.rounds <= prepared.compiled.bounds.rounds,
            "{sql}: rounds {} > bound {}",
            session.stats.rounds,
            prepared.compiled.bounds.rounds
        );
    }
}

#[test]
fn scan_pagination_visits_everything_once() {
    let db = scadr_db(3);
    populate(&db, 10, 3, 25);
    let sql = "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 7";
    let prepared = db.prepare(sql).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0004".into()));

    let mut session = Session::new();
    let mut all = Vec::new();
    let mut cursor: Option<Cursor> = None;
    let mut pages = 0;
    loop {
        let r = db
            .execute_with(
                &mut session,
                &prepared,
                &params,
                ExecStrategy::Parallel,
                cursor.as_ref(),
            )
            .unwrap();
        if r.rows.is_empty() {
            break;
        }
        pages += 1;
        assert!(r.rows.len() <= 7);
        all.extend(r.rows);
        match r.cursor {
            // cursors survive serialization (shipped to the user, §4.1)
            Some(c) => cursor = Some(Cursor::from_bytes(&c.to_bytes()).unwrap()),
            None => break,
        }
    }
    assert_eq!(pages, 4, "25 thoughts / 7 per page");
    assert_eq!(all.len(), 25);
    let full = db
        .reference_query(
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC",
            &params,
        )
        .unwrap();
    assert_eq!(all, full, "pages concatenate to the full ordered result");
}

#[test]
fn sorted_join_pagination_resumes_the_merge() {
    let db = scadr_db(4);
    populate(&db, 30, 8, 9);
    let sql = "SELECT thoughts.* \
        FROM subscriptions s JOIN thoughts \
        WHERE thoughts.owner = s.target AND s.owner = <uname> \
        ORDER BY thoughts.timestamp DESC PAGINATE 5";
    let prepared = db.prepare(sql).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0010".into()));

    let mut session = Session::new();
    let mut all = Vec::new();
    let mut cursor: Option<Cursor> = None;
    for _ in 0..50 {
        let r = db
            .execute_with(
                &mut session,
                &prepared,
                &params,
                ExecStrategy::Parallel,
                cursor.as_ref(),
            )
            .unwrap();
        if r.rows.is_empty() {
            break;
        }
        all.extend(r.rows);
        match r.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    // 8 followed users x 9 thoughts = 72 rows
    let full = db
        .reference_query(
            "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
             WHERE thoughts.owner = s.target AND s.owner = <uname> \
             ORDER BY thoughts.timestamp DESC",
            &params,
        )
        .unwrap();
    assert_eq!(all.len(), full.len());
    // same multiset in the same timestamp order (ties may permute between
    // equal-timestamp rows of different owners — the merge breaks ties by
    // index key, the reference by input order)
    let ts = |rows: &[piql_core::tuple::Tuple]| -> Vec<i64> {
        rows.iter().map(|r| r[1].as_i64().unwrap()).collect()
    };
    assert_eq!(ts(&all), ts(&full));
    let mut a = all.clone();
    let mut b = full.clone();
    let key = |t: &piql_core::tuple::Tuple| format!("{t}");
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
}

#[test]
fn token_search_finds_rows_after_updates() {
    let db = scadr_db(3);
    populate(&db, 8, 2, 3);
    // force creation of the token index via prepare
    let sql = "SELECT * FROM users WHERE home_town LIKE <word> LIMIT 10";
    let prepared = db.prepare(sql).unwrap();
    assert!(
        !prepared.compiled.required_indexes.is_empty() || {
            // re-preparing reuses the provisioned index
            db.prepare(sql)
                .unwrap()
                .compiled
                .required_indexes
                .is_empty()
        }
    );
    let mut params = Params::new();
    params.set(0, Value::Varchar("Berkeley".into()));
    let mut session = Session::new();
    let r = db.query(&mut session, sql, &params).unwrap();
    assert_eq!(r.rows.len(), 8, "all users live in Berkeley");

    // move one user; token index must follow (§7.2 maintenance order)
    db.execute_dml(
        &mut session,
        "UPDATE users SET home_town = 'Istanbul Turkey' WHERE username = 'user0002'",
        &Params::new(),
    )
    .unwrap();
    let r = db.query(&mut session, sql, &params).unwrap();
    assert_eq!(r.rows.len(), 7);
    params.set(0, Value::Varchar("istanbul".into()));
    let r = db.query(&mut session, sql, &params).unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Varchar("user0002".into()));
}

#[test]
fn insert_enforces_uniqueness_and_cardinality() {
    let db = scadr_db(3);
    populate(&db, 5, 0, 0);
    let mut session = Session::new();

    // duplicate pk
    let err = db
        .insert_row(&mut session, "users", tuple!["user0000", "Oakland"])
        .unwrap_err();
    assert!(matches!(
        err,
        DbError::Write(WriteError::DuplicateKey { .. })
    ));

    // cardinality limit 10 on subscriptions.owner
    for i in 0..10 {
        db.insert_row(
            &mut session,
            "subscriptions",
            tuple!["user0000", format!("t{i}").as_str(), true],
        )
        .unwrap();
    }
    let err = db
        .insert_row(
            &mut session,
            "subscriptions",
            tuple!["user0000", "one-too-many", true],
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            DbError::Write(WriteError::CardinalityExceeded { limit: 10, .. })
        ),
        "{err}"
    );
    // the violating row must have been rolled back
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0000".into()));
    let rows = db
        .reference_query("SELECT * FROM subscriptions WHERE owner = <o>", &params)
        .unwrap();
    assert_eq!(rows.len(), 10);
}

#[test]
fn delete_removes_record_and_index_entries() {
    let db = scadr_db(3);
    populate(&db, 4, 0, 0);
    let mut session = Session::new();
    let existed = db
        .delete_row(&mut session, "users", &[Value::Varchar("user0001".into())])
        .unwrap();
    assert!(existed);
    let gone = db
        .delete_row(&mut session, "users", &[Value::Varchar("user0001".into())])
        .unwrap();
    assert!(!gone);
    let mut params = Params::new();
    params.set(0, Value::Varchar("Berkeley".into()));
    let r = db
        .query(
            &mut session,
            "SELECT * FROM users WHERE home_town LIKE <w> LIMIT 10",
            &params,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3, "token index entry deleted too");
}

#[test]
fn in_rewrite_executes_as_bounded_lookups() {
    let db = scadr_db(4);
    populate(&db, 30, 6, 0);
    let sql = "SELECT owner, target FROM subscriptions \
               WHERE target = <t> AND owner IN [2: friends MAX 8]";
    let prepared = db.prepare(sql).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0005".into()));
    params.set(
        1,
        vec![
            Value::Varchar("user0001".into()),
            Value::Varchar("user0002".into()),
            Value::Varchar("user0003".into()),
            Value::Varchar("user0004".into()),
            Value::Varchar("user0029".into()),
        ],
    );
    let mut session = Session::new();
    let r = db.execute(&mut session, &prepared, &params).unwrap();
    let expected = db.reference_query(sql, &params).unwrap();
    let sorted = |mut v: Vec<piql_core::tuple::Tuple>| {
        v.sort_by_key(|t| format!("{t}"));
        v
    };
    assert_eq!(sorted(r.rows), sorted(expected));
    assert!(session.stats.logical_requests <= 8, "bounded by MAX 8");

    // exceeding the declared MAX is an error, not a truncation
    params.set(
        1,
        (0..9)
            .map(|i| Value::Varchar(format!("user{i:04}")))
            .collect::<Vec<_>>(),
    );
    let mut s2 = Session::new();
    assert!(db.execute(&mut s2, &prepared, &params).is_err());
}

#[test]
fn aggregates_group_bounded_results() {
    let db = scadr_db(3);
    populate(&db, 6, 4, 5);
    let sql = "SELECT owner, COUNT(*) AS n FROM subscriptions \
               WHERE owner = <o> GROUP BY owner";
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0002".into()));
    let mut session = Session::new();
    let r = db.query(&mut session, sql, &params).unwrap();
    assert_eq!(r.rows, vec![tuple!["user0002", Value::BigInt(4)]]);
}

#[test]
fn update_preserves_unchanged_index_entries() {
    let db = scadr_db(3);
    populate(&db, 3, 0, 2);
    let mut session = Session::new();
    db.execute_dml(
        &mut session,
        "UPDATE thoughts SET text = 'edited contents' \
         WHERE owner = 'user0001' AND timestamp = <ts>",
        Params::new().set(0, Value::Timestamp(1_000_131)),
    )
    .unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user0001".into()));
    let rows = db
        .reference_query("SELECT * FROM thoughts WHERE owner = <o>", &params)
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .any(|r| r[2] == Value::Varchar("edited contents".into())));
}
