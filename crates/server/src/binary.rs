//! The length-prefixed binary encoding (protocol v3).
//!
//! **The normative spec is PROTOCOL.md §9.** In brief: a v3 client opens
//! with the 5-byte magic preamble [`MAGIC`]; the server answers a hello
//! frame carrying its version and both sides then exchange frames:
//!
//! ```text
//! frame   := len:u32le  opcode:u8  id  payload
//! id      := 0x00 | 0x01 i64le | 0x02 len:u32le utf8
//! ```
//!
//! `len` counts every byte after itself (opcode + id + payload) and is
//! capped at [`MAX_FRAME`]; an oversized length is a *framing* error that
//! closes the connection (the stream cannot be resynchronized), while any
//! decode failure inside an intact frame is answered with an error
//! response — echoing the header id when one parses — and the stream
//! continues, mirroring the v2 malformed-line rules.
//!
//! The magic deliberately ends in `\n` and starts with `0xB3` (never a
//! valid JSON/UTF-8 first byte): a v3 client that reaches a v2-only server
//! sends what that server reads as one garbage line, receives a JSON error
//! line back, and interprets its first four bytes (`{"ok` ≈ 1.8 GB) as a
//! length over the cap — failing cleanly with "server does not speak v3"
//! instead of hanging. A v2 client at a v3+v2 server never trips the
//! sniffer because no JSON line starts with `0xB3`.
//!
//! Values, parameters, cursors, and response documents each have a tagged
//! binary form (see the constants below). Response documents are encoded
//! [`Json`] trees — object keys in `BTreeMap` (lexicographic) order — so a
//! binary response carries byte-for-byte the same information as its JSON
//! twin, and the server's allocation-free fast path can emit frames that
//! are *byte-identical* to the generic encoder's (pinned by tests).

use crate::json::Json;
use crate::protocol::{Envelope, ProtoError, Request, RequestId};
use crate::wire::Wire;
use piql_core::plan::params::ParamValue;
use piql_core::value::ValueRef;
use piql_engine::Cursor;
use std::io::{self, BufRead};

/// Connection preamble a v3 client sends before its first frame:
/// `0xB3 'P' 'Q' 0x03 '\n'`.
pub const MAGIC: [u8; 5] = [0xB3, b'P', b'Q', 0x03, b'\n'];

/// Protocol version carried in the hello frame.
pub const VERSION: u8 = 3;

/// Upper bound on `len` (bytes after the length prefix). Larger lengths
/// are framing errors, not messages.
pub const MAX_FRAME: usize = 64 << 20;

// Request opcodes (one per PROTOCOL.md verb).
pub const OP_PREPARE: u8 = 0x01;
pub const OP_EXECUTE: u8 = 0x02;
pub const OP_CURSOR_NEXT: u8 = 0x03;
pub const OP_DML: u8 = 0x04;
pub const OP_STATS: u8 = 0x05;
pub const OP_REVALIDATE: u8 = 0x06;
pub const OP_REBALANCE: u8 = 0x07;
pub const OP_SNAPSHOT: u8 = 0x08;
pub const OP_BATCH: u8 = 0x09;
pub const OP_EXPLAIN: u8 = 0x0A;
/// Server → client greeting after the magic: payload is one version byte.
pub const OP_HELLO: u8 = 0x7F;
/// Every server → client answer frame.
pub const OP_RESPONSE: u8 = 0x80;

// Frame-header id kinds.
const ID_NONE: u8 = 0;
const ID_INT: u8 = 1;
const ID_STR: u8 = 2;

// Value tags (params).
const V_NULL: u8 = 0;
const V_INT: u8 = 1;
const V_BIGINT: u8 = 2;
const V_VARCHAR: u8 = 3;
const V_BOOL_FALSE: u8 = 4;
const V_BOOL_TRUE: u8 = 5;
const V_TIMESTAMP: u8 = 6;
const V_DOUBLE: u8 = 7;

// Parameter markers.
const P_SCALAR: u8 = 0;
const P_COLLECTION: u8 = 1;

// Json-tree tags (responses).
const J_NULL: u8 = 0;
const J_FALSE: u8 = 1;
const J_TRUE: u8 = 2;
const J_INT: u8 = 3;
const J_FLOAT: u8 = 4;
const J_STR: u8 = 5;
const J_ARR: u8 = 6;
const J_OBJ: u8 = 7;

/// Response documents deeper than this are refused (a hostile frame could
/// otherwise nest arrays until the decoder's stack overflows).
const MAX_JSON_DEPTH: u32 = 96;

// ---------------------------------------------------------------- writing

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Reserve the length prefix of a new frame; pair with [`finish_frame`].
#[inline]
pub(crate) fn begin_frame(out: &mut Vec<u8>) -> usize {
    let mark = out.len();
    put_u32(out, 0);
    mark
}

/// Patch the length prefix reserved by [`begin_frame`].
#[inline]
pub(crate) fn finish_frame(out: &mut [u8], mark: usize) {
    let len = (out.len() - mark - 4) as u32;
    out[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
}

fn put_id(out: &mut Vec<u8>, id: Option<&RequestId>) {
    match id {
        None => out.push(ID_NONE),
        Some(RequestId::Int(i)) => {
            out.push(ID_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Some(RequestId::Str(s)) => {
            out.push(ID_STR);
            put_str(out, s);
        }
    }
}

/// Append one tagged value (the parameter/value encoding).
pub(crate) fn put_value(out: &mut Vec<u8>, v: ValueRef<'_>) {
    match v {
        ValueRef::Null => out.push(V_NULL),
        ValueRef::Int(i) => {
            out.push(V_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        ValueRef::BigInt(i) => {
            out.push(V_BIGINT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        ValueRef::Varchar(s) => {
            out.push(V_VARCHAR);
            put_str(out, s);
        }
        ValueRef::Bool(false) => out.push(V_BOOL_FALSE),
        ValueRef::Bool(true) => out.push(V_BOOL_TRUE),
        ValueRef::Timestamp(t) => {
            out.push(V_TIMESTAMP);
            out.extend_from_slice(&t.to_le_bytes());
        }
        ValueRef::Double(d) => {
            out.push(V_DOUBLE);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn put_params(out: &mut Vec<u8>, params: &[ParamValue]) {
    put_u32(out, params.len() as u32);
    for p in params {
        match p {
            ParamValue::Scalar(v) => {
                out.push(P_SCALAR);
                put_value(out, ValueRef::of(v));
            }
            ParamValue::Collection(vs) => {
                out.push(P_COLLECTION);
                put_u32(out, vs.len() as u32);
                for v in vs {
                    put_value(out, ValueRef::of(v));
                }
            }
        }
    }
}

fn put_cursor(out: &mut Vec<u8>, cursor: Option<&Cursor>) {
    match cursor {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            let bytes = c.to_bytes();
            put_u32(out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
        }
    }
}

fn opcode_of(req: &Request) -> u8 {
    match req {
        Request::Prepare { .. } => OP_PREPARE,
        Request::Execute { .. } => OP_EXECUTE,
        Request::CursorNext { .. } => OP_CURSOR_NEXT,
        Request::Dml { .. } => OP_DML,
        Request::Stats => OP_STATS,
        Request::Revalidate => OP_REVALIDATE,
        Request::Rebalance => OP_REBALANCE,
        Request::Snapshot => OP_SNAPSHOT,
        Request::Batch { .. } => OP_BATCH,
        Request::Explain { .. } => OP_EXPLAIN,
    }
}

/// An optional string: presence byte, then the string when present (the
/// `explain` verb's name-or-sql target).
fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_body(out: &mut Vec<u8>, req: &Request) {
    match req {
        Request::Prepare { name, sql } => {
            put_str(out, name);
            put_str(out, sql);
        }
        Request::Execute {
            name,
            params,
            cursor,
        } => {
            put_str(out, name);
            put_params(out, params);
            put_cursor(out, cursor.as_ref());
        }
        Request::CursorNext {
            name,
            params,
            cursor,
        } => {
            put_str(out, name);
            put_params(out, params);
            put_cursor(out, Some(cursor));
        }
        Request::Dml { sql, params } => {
            put_str(out, sql);
            put_params(out, params);
        }
        Request::Stats | Request::Revalidate | Request::Rebalance | Request::Snapshot => {}
        Request::Explain { name, sql } => {
            put_opt_str(out, name.as_deref());
            put_opt_str(out, sql.as_deref());
        }
        Request::Batch { requests } => {
            put_u32(out, requests.len() as u32);
            for sub in requests {
                out.push(opcode_of(sub));
                put_body(out, sub);
            }
        }
    }
}

/// Append one encoded [`Json`] tree (object keys in map order, which is
/// lexicographic — the property the fast-path/generic byte-identity test
/// leans on).
pub(crate) fn put_json(out: &mut Vec<u8>, j: &Json) {
    match j {
        Json::Null => out.push(J_NULL),
        Json::Bool(false) => out.push(J_FALSE),
        Json::Bool(true) => out.push(J_TRUE),
        Json::Int(i) => {
            out.push(J_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Json::Float(f) => {
            // exact bits — unlike JSON text, NaN/Inf survive
            out.push(J_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(J_STR);
            put_str(out, s);
        }
        Json::Arr(items) => {
            out.push(J_ARR);
            put_u32(out, items.len() as u32);
            for item in items {
                put_json(out, item);
            }
        }
        Json::Obj(fields) => {
            out.push(J_OBJ);
            put_u32(out, fields.len() as u32);
            for (k, v) in fields {
                put_str(out, k);
                put_json(out, v);
            }
        }
    }
}

// ------------------------------------------------- fast-path emission
//
// The server's allocation-free point-read path (`server::BinaryConn`)
// composes its response frame from these emitters instead of building a
// [`Json`] tree. Their output is pinned byte-identical to
// `put_json(&ok_response([("rows", ..), ("cursor", Null)]))` by tests —
// any drift would make fast and general responses distinguishable.

/// The fast `execute` response body up to and including the rows array's
/// element count. `BTreeMap` key order puts `cursor` < `ok` < `rows`.
pub(crate) fn put_fast_ok_header(out: &mut Vec<u8>, rows: u32) {
    out.push(J_OBJ);
    put_u32(out, 3);
    put_str(out, "cursor");
    out.push(J_NULL);
    put_str(out, "ok");
    out.push(J_TRUE);
    put_str(out, "rows");
    out.push(J_ARR);
    put_u32(out, rows);
}

/// One row's array header; `arity` column values follow via
/// [`put_row_value`].
pub(crate) fn put_row_header(out: &mut Vec<u8>, arity: u32) {
    out.push(J_ARR);
    put_u32(out, arity);
}

/// One column value exactly as `put_json(&value_to_json(v))` emits it —
/// the tagged one-field object of PROTOCOL.md §4.2, without materializing
/// the intermediate [`Json`].
pub(crate) fn put_row_value(out: &mut Vec<u8>, v: ValueRef<'_>) {
    fn field(out: &mut Vec<u8>, key: &str) {
        out.push(J_OBJ);
        put_u32(out, 1);
        put_str(out, key);
    }
    match v {
        ValueRef::Null => out.push(J_NULL),
        ValueRef::Int(i) => {
            field(out, "int");
            out.push(J_INT);
            out.extend_from_slice(&(i as i64).to_le_bytes());
        }
        ValueRef::BigInt(i) => {
            field(out, "big");
            out.push(J_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        ValueRef::Varchar(s) => {
            field(out, "str");
            out.push(J_STR);
            put_str(out, s);
        }
        ValueRef::Bool(b) => {
            field(out, "bool");
            out.push(if b { J_TRUE } else { J_FALSE });
        }
        ValueRef::Timestamp(t) => {
            field(out, "ts");
            out.push(J_INT);
            out.extend_from_slice(&t.to_le_bytes());
        }
        ValueRef::Double(d) => {
            field(out, "f");
            out.push(J_FLOAT);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// Append the server's hello frame (sent once, after reading the magic).
pub fn put_hello(out: &mut Vec<u8>) {
    let mark = begin_frame(out);
    out.push(OP_HELLO);
    out.push(ID_NONE);
    out.push(VERSION);
    finish_frame(out, mark);
}

// ---------------------------------------------------------------- reading

fn truncated() -> ProtoError {
    ProtoError::Malformed("truncated frame".into())
}

/// A bounds-checked cursor over one frame's bytes. Every decode error is a
/// [`ProtoError`] (answerable in-stream), never a panic.
pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let s = self
            .buf
            .get(self.pos..self.pos.checked_add(n).ok_or_else(truncated)?)
            .ok_or_else(truncated)?;
        self.pos += n;
        Ok(s)
    }

    /// `take` as a fixed-size array, so the little-endian decoders below
    /// stay free of unwraps on the request path.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        self.take(N)?.try_into().map_err(|_| truncated())
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or_else(truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take_array()?))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, ProtoError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    pub(crate) fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes after message".into()))
        }
    }
}

fn read_id(cur: &mut Cur<'_>) -> Result<Option<RequestId>, ProtoError> {
    match cur.u8()? {
        ID_NONE => Ok(None),
        ID_INT => Ok(Some(RequestId::Int(cur.i64()?))),
        ID_STR => Ok(Some(RequestId::Str(cur.str()?.to_string()))),
        other => Err(ProtoError::Malformed(format!("unknown id kind {other}"))),
    }
}

/// Decode one tagged value, borrowing string payloads from the frame.
pub(crate) fn read_value_ref<'a>(cur: &mut Cur<'a>) -> Result<ValueRef<'a>, ProtoError> {
    Ok(match cur.u8()? {
        V_NULL => ValueRef::Null,
        V_INT => ValueRef::Int(cur.i32()?),
        V_BIGINT => ValueRef::BigInt(cur.i64()?),
        V_VARCHAR => ValueRef::Varchar(cur.str()?),
        V_BOOL_FALSE => ValueRef::Bool(false),
        V_BOOL_TRUE => ValueRef::Bool(true),
        V_TIMESTAMP => ValueRef::Timestamp(cur.i64()?),
        V_DOUBLE => ValueRef::Double(cur.f64()?),
        other => return Err(ProtoError::Malformed(format!("unknown value tag {other}"))),
    })
}

/// A conservative capacity for a count-prefixed sequence: every element
/// needs at least one byte, so a count beyond the remaining bytes is
/// malformed (and must not drive a huge pre-allocation).
fn checked_capacity(cur: &Cur<'_>, count: u32) -> Result<usize, ProtoError> {
    let count = count as usize;
    if count > cur.remaining() {
        return Err(ProtoError::Malformed("count exceeds frame".into()));
    }
    Ok(count)
}

fn read_params(cur: &mut Cur<'_>) -> Result<Vec<ParamValue>, ProtoError> {
    let raw_count = cur.u32()?;
    let count = checked_capacity(cur, raw_count)?;
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        params.push(match cur.u8()? {
            P_SCALAR => ParamValue::Scalar(read_value_ref(cur)?.to_value()),
            P_COLLECTION => {
                let raw_n = cur.u32()?;
                let n = checked_capacity(cur, raw_n)?;
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(read_value_ref(cur)?.to_value());
                }
                ParamValue::Collection(vs)
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown param marker {other}"
                )))
            }
        });
    }
    Ok(params)
}

/// Scan an encoded parameter section, recording the byte offset (within
/// `cur`'s buffer) of each *scalar* parameter's tagged value into
/// `offsets` (cleared first, capacity reused). Returns `Ok(false)` when a
/// collection parameter appears — the point-read fast path only binds
/// scalars and must fall back.
pub(crate) fn scan_scalar_params(
    cur: &mut Cur<'_>,
    offsets: &mut Vec<usize>,
) -> Result<bool, ProtoError> {
    offsets.clear();
    let count = cur.u32()?;
    for _ in 0..count {
        match cur.u8()? {
            P_SCALAR => {
                offsets.push(cur.pos());
                read_value_ref(cur)?;
            }
            P_COLLECTION => return Ok(false),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unknown param marker {other}"
                )))
            }
        }
    }
    Ok(true)
}

fn read_opt_str(cur: &mut Cur<'_>) -> Result<Option<String>, ProtoError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(cur.str()?.to_string())),
        other => Err(ProtoError::Malformed(format!(
            "bad optional-string presence byte {other}"
        ))),
    }
}

fn read_cursor(cur: &mut Cur<'_>) -> Result<Option<Cursor>, ProtoError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => {
            let len = cur.u32()? as usize;
            let raw = cur.take(len)?;
            Cursor::from_bytes(raw)
                .map(Some)
                .map_err(|e| ProtoError::Malformed(e.to_string()))
        }
        other => Err(ProtoError::Malformed(format!(
            "bad cursor presence byte {other}"
        ))),
    }
}

fn read_body(cur: &mut Cur<'_>, opcode: u8, nested: bool) -> Result<Request, ProtoError> {
    Ok(match opcode {
        OP_PREPARE => Request::Prepare {
            name: cur.str()?.to_string(),
            sql: cur.str()?.to_string(),
        },
        OP_EXECUTE => Request::Execute {
            name: cur.str()?.to_string(),
            params: read_params(cur)?,
            cursor: read_cursor(cur)?,
        },
        OP_CURSOR_NEXT => {
            let name = cur.str()?.to_string();
            let params = read_params(cur)?;
            let cursor = read_cursor(cur)?
                .ok_or_else(|| ProtoError::Malformed("cursor-next requires a 'cursor'".into()))?;
            Request::CursorNext {
                name,
                params,
                cursor,
            }
        }
        OP_DML => Request::Dml {
            sql: cur.str()?.to_string(),
            params: read_params(cur)?,
        },
        OP_STATS => Request::Stats,
        OP_REVALIDATE => Request::Revalidate,
        OP_REBALANCE => Request::Rebalance,
        OP_SNAPSHOT => Request::Snapshot,
        OP_EXPLAIN => {
            let name = read_opt_str(cur)?;
            let sql = read_opt_str(cur)?;
            if name.is_some() == sql.is_some() {
                return Err(ProtoError::Malformed(
                    "explain requires exactly one of 'name' or 'sql'".into(),
                ));
            }
            Request::Explain { name, sql }
        }
        OP_BATCH => {
            if nested {
                return Err(ProtoError::Malformed("batch cannot contain a batch".into()));
            }
            let raw_count = cur.u32()?;
            let count = checked_capacity(cur, raw_count)?;
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                let op = cur.u8()?;
                requests.push(read_body(cur, op, true)?);
            }
            Request::Batch { requests }
        }
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown opcode {other:#04x}"
            )))
        }
    })
}

fn read_json(cur: &mut Cur<'_>, depth: u32) -> Result<Json, ProtoError> {
    if depth > MAX_JSON_DEPTH {
        return Err(ProtoError::Malformed("response nested too deeply".into()));
    }
    Ok(match cur.u8()? {
        J_NULL => Json::Null,
        J_FALSE => Json::Bool(false),
        J_TRUE => Json::Bool(true),
        J_INT => Json::Int(cur.i64()?),
        J_FLOAT => Json::Float(cur.f64()?),
        J_STR => Json::Str(cur.str()?.to_string()),
        J_ARR => {
            let raw_count = cur.u32()?;
            let count = checked_capacity(cur, raw_count)?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(read_json(cur, depth + 1)?);
            }
            Json::Arr(items)
        }
        J_OBJ => {
            let raw_count = cur.u32()?;
            let count = checked_capacity(cur, raw_count)?;
            let mut fields = std::collections::BTreeMap::new();
            for _ in 0..count {
                let key = cur.str()?.to_string();
                fields.insert(key, read_json(cur, depth + 1)?);
            }
            Json::Obj(fields)
        }
        other => return Err(ProtoError::Malformed(format!("unknown json tag {other}"))),
    })
}

/// Split a request frame into `(opcode, raw id bytes, payload)` without
/// materializing the id — the fast path echoes the raw bytes verbatim
/// (zero allocation) and [`Wire::extract_id`] rides on it too.
pub(crate) fn split_frame(frame: &[u8]) -> Result<(u8, &[u8], &[u8]), ProtoError> {
    let mut cur = Cur::new(frame);
    let opcode = cur.u8()?;
    let id_start = cur.pos();
    match cur.u8()? {
        ID_NONE => {}
        ID_INT => {
            cur.take(8)?;
        }
        ID_STR => {
            let len = cur.u32()? as usize;
            cur.take(len)?;
        }
        other => return Err(ProtoError::Malformed(format!("unknown id kind {other}"))),
    }
    let id_end = cur.pos();
    Ok((opcode, &frame[id_start..id_end], &frame[id_end..]))
}

/// Decode the hello frame; returns the server's version byte.
pub fn parse_hello(frame: &[u8]) -> Result<u8, ProtoError> {
    let mut cur = Cur::new(frame);
    if cur.u8()? != OP_HELLO {
        return Err(ProtoError::Malformed("expected hello frame".into()));
    }
    if read_id(&mut cur)?.is_some() {
        return Err(ProtoError::Malformed("hello carries no id".into()));
    }
    let version = cur.u8()?;
    cur.done()?;
    Ok(version)
}

// ------------------------------------------------------------------ Wire

/// The binary encoding (protocol v3) as a [`Wire`].
#[derive(Debug, Default, Clone, Copy)]
pub struct BinaryWire;

impl Wire for BinaryWire {
    fn version(&self) -> u8 {
        VERSION
    }

    fn encode_envelope(&self, env: &Envelope, out: &mut Vec<u8>) {
        let mark = begin_frame(out);
        out.push(opcode_of(&env.request));
        put_id(out, env.id.as_ref());
        put_body(out, &env.request);
        finish_frame(out, mark);
    }

    fn encode_response(&self, id: Option<&RequestId>, response: &Json, out: &mut Vec<u8>) {
        let mark = begin_frame(out);
        out.push(OP_RESPONSE);
        put_id(out, id);
        put_json(out, response);
        finish_frame(out, mark);
    }

    fn read_frame(&self, reader: &mut dyn BufRead, buf: &mut Vec<u8>) -> io::Result<bool> {
        let mut len_bytes = [0u8; 4];
        let mut filled = 0usize;
        while filled < 4 {
            let n = reader.read(&mut len_bytes[filled..])?;
            if n == 0 {
                if filled == 0 {
                    // clean EOF at a frame boundary
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            filled += n;
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME}-byte cap (server does not speak v3?)"),
            ));
        }
        buf.clear();
        buf.resize(len, 0);
        reader.read_exact(buf)?;
        Ok(true)
    }

    fn decode_envelope(&self, frame: &[u8]) -> Result<Envelope, ProtoError> {
        let mut cur = Cur::new(frame);
        let opcode = cur.u8()?;
        let id = read_id(&mut cur)?;
        let request = read_body(&mut cur, opcode, false)?;
        cur.done()?;
        Ok(Envelope { id, request })
    }

    fn decode_response(&self, frame: &[u8]) -> Result<(Option<RequestId>, Json), ProtoError> {
        let mut cur = Cur::new(frame);
        if cur.u8()? != OP_RESPONSE {
            return Err(ProtoError::Malformed("expected response frame".into()));
        }
        let id = read_id(&mut cur)?;
        let json = read_json(&mut cur, 0)?;
        cur.done()?;
        Ok((id, json))
    }

    /// Best-effort header-id recovery: enough of the frame header must
    /// parse to delimit the id field; payload garbage is irrelevant. This
    /// is the binary analog of the v2 rule that a malformed line's error
    /// response still echoes a parseable `id` (PROTOCOL.md §7).
    fn extract_id(&self, frame: &[u8]) -> Option<RequestId> {
        let mut cur = Cur::new(frame);
        cur.u8().ok()?;
        read_id(&mut cur).ok()?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_core::value::Value;
    use std::io::BufReader;

    fn roundtrip(env: &Envelope) -> Envelope {
        let wire = BinaryWire;
        let mut out = Vec::new();
        wire.encode_envelope(env, &mut out);
        let mut reader = BufReader::new(&out[..]);
        let mut frame = Vec::new();
        assert!(wire.read_frame(&mut reader, &mut frame).unwrap());
        assert!(!wire.read_frame(&mut reader, &mut Vec::new()).unwrap());
        wire.decode_envelope(&frame).unwrap()
    }

    #[test]
    fn envelopes_roundtrip() {
        for env in [
            Envelope {
                id: None,
                request: Request::Stats,
            },
            Envelope {
                id: Some(RequestId::Int(-7)),
                request: Request::Prepare {
                    name: "q".into(),
                    sql: "SELECT * FROM users WHERE id = [p]".into(),
                },
            },
            Envelope {
                id: Some(RequestId::Str("page-3".into())),
                request: Request::Execute {
                    name: "q".into(),
                    params: vec![
                        ParamValue::Scalar(Value::Int(41)),
                        ParamValue::Scalar(Value::Varchar("héllo\0".into())),
                        ParamValue::Collection(vec![Value::BigInt(i64::MIN), Value::Null]),
                        ParamValue::Scalar(Value::Double(f64::NAN)),
                    ],
                    cursor: None,
                },
            },
            Envelope {
                id: Some(RequestId::Int(9)),
                request: Request::Explain {
                    name: Some("q".into()),
                    sql: None,
                },
            },
            Envelope {
                id: None,
                request: Request::Explain {
                    name: None,
                    sql: Some("SELECT * FROM t LIMIT 3".into()),
                },
            },
            Envelope {
                id: Some(RequestId::Int(0)),
                request: Request::Batch {
                    requests: vec![
                        Request::Stats,
                        Request::Dml {
                            sql: "INSERT ...".into(),
                            params: vec![ParamValue::Scalar(Value::Bool(true))],
                        },
                    ],
                },
            },
        ] {
            let back = roundtrip(&env);
            // NaN != NaN breaks plain PartialEq; compare re-encodings
            let wire = BinaryWire;
            let (mut a, mut b) = (Vec::new(), Vec::new());
            wire.encode_envelope(&env, &mut a);
            wire.encode_envelope(&back, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn responses_roundtrip_and_keep_float_bits() {
        let wire = BinaryWire;
        let response = crate::protocol::ok_response([
            (
                "rows",
                Json::Arr(vec![Json::Arr(vec![
                    Json::obj([("int", Json::Int(5))]),
                    Json::obj([("f", Json::Float(f64::NAN))]),
                ])]),
            ),
            ("cursor", Json::Null),
        ]);
        let mut out = Vec::new();
        wire.encode_response(Some(&RequestId::Str("r".into())), &response, &mut out);
        let (id, back) = wire.decode_response(&out[4..]).unwrap();
        assert_eq!(id, Some(RequestId::Str("r".into())));
        // NaN survives binary (it would be null in JSON text)
        let rows = back.get("rows").unwrap().as_arr().unwrap();
        let f = rows[0].as_arr().unwrap()[1].get("f").unwrap();
        assert!(matches!(f, Json::Float(x) if x.is_nan()));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn nested_batch_is_malformed() {
        let wire = BinaryWire;
        let mut out = Vec::new();
        let mark = begin_frame(&mut out);
        out.push(OP_BATCH);
        out.push(ID_NONE);
        put_u32(&mut out, 1);
        out.push(OP_BATCH);
        put_u32(&mut out, 0);
        finish_frame(&mut out, mark);
        let err = wire.decode_envelope(&out[4..]).unwrap_err();
        assert!(err.to_string().contains("batch cannot contain a batch"));
    }

    #[test]
    fn header_id_recoverable_from_malformed_payloads() {
        let wire = BinaryWire;
        // valid header (opcode + int id), garbage payload
        let mut frame = vec![OP_EXECUTE, ID_INT];
        frame.extend_from_slice(&42i64.to_le_bytes());
        frame.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
        assert!(wire.decode_envelope(&frame).is_err());
        assert_eq!(wire.extract_id(&frame), Some(RequestId::Int(42)));
        // header truncated mid-id: no id recoverable
        assert_eq!(wire.extract_id(&[OP_EXECUTE, ID_INT, 1, 2]), None);
        assert_eq!(wire.extract_id(&[]), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_io_errors() {
        let wire = BinaryWire;
        let mut buf = Vec::new();
        // length over the cap
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let err = wire
            .read_frame(&mut BufReader::new(&huge[..]), &mut buf)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // EOF mid-frame
        let short = [5u8, 0, 0, 0, 1, 2];
        let err = wire
            .read_frame(&mut BufReader::new(&short[..]), &mut buf)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // EOF mid-length-prefix
        let stub = [5u8, 0];
        let err = wire
            .read_frame(&mut BufReader::new(&stub[..]), &mut buf)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hello_roundtrips() {
        let mut out = Vec::new();
        put_hello(&mut out);
        assert_eq!(&out[..4], &3u32.to_le_bytes());
        assert_eq!(parse_hello(&out[4..]).unwrap(), VERSION);
    }

    #[test]
    fn fast_emitters_match_generic_encoder() {
        use crate::protocol::{ok_response, row_to_json};
        let row = vec![
            Value::Null,
            Value::Int(-5),
            Value::BigInt(i64::MIN),
            Value::Varchar("héllo\0".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Double(f64::NAN),
        ];
        for rows in [vec![], vec![row]] {
            let generic_doc = ok_response([
                (
                    "rows",
                    Json::Arr(rows.iter().map(|r| row_to_json(r)).collect()),
                ),
                ("cursor", Json::Null),
            ]);
            let mut generic = Vec::new();
            put_json(&mut generic, &generic_doc);

            let mut fast = Vec::new();
            put_fast_ok_header(&mut fast, rows.len() as u32);
            for row in &rows {
                put_row_header(&mut fast, row.len() as u32);
                for v in row {
                    put_row_value(&mut fast, ValueRef::of(v));
                }
            }
            assert_eq!(fast, generic);
        }
    }

    #[test]
    fn json_error_line_reads_as_oversized_frame() {
        // what a v2-only server would send back after reading the magic
        // as a garbage line: the v3 client must fail cleanly, not hang
        let reply = b"{\"ok\":false,\"error\":\"malformed request\"}\n";
        let mut buf = Vec::new();
        let err = BinaryWire
            .read_frame(&mut BufReader::new(&reply[..]), &mut buf)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("does not speak v3"));
    }
}
