//! A small blocking client for the line protocol — what the examples,
//! benches, and differential tests drive the server with.

use crate::json::Json;
use crate::protocol::{hex_decode, request_to_line, value_from_json, ProtoError, Request};
use piql_core::plan::params::ParamValue;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::Cursor;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Proto(ProtoError),
    /// The server answered `{"ok":false,...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One page of results.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    pub rows: Vec<Tuple>,
    pub cursor: Option<Cursor>,
}

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request, read one response object (the raw envelope,
    /// `ok` included).
    pub fn request_raw(&mut self, request: &Request) -> Result<Json, ClientError> {
        let line = request_to_line(request);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(crate::json::parse(response.trim()).map_err(ProtoError::Json)?)
    }

    /// Send one request; error if the server answered `ok = false`.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        let response = self.request_raw(request)?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            _ => Err(ClientError::Server(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            )),
        }
    }

    /// Register a statement; returns the admission envelope (even when
    /// the verdict is a rejection — that is a successful protocol exchange).
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<Json, ClientError> {
        self.request(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })
    }

    /// Execute a registered statement.
    pub fn execute(
        &mut self,
        name: &str,
        params: &[ParamValue],
        cursor: Option<Cursor>,
    ) -> Result<Page, ClientError> {
        let response = self.request(&Request::Execute {
            name: name.to_string(),
            params: params.to_vec(),
            cursor,
        })?;
        decode_page(&response)
    }

    /// Resume a paginated statement from a cursor.
    pub fn cursor_next(
        &mut self,
        name: &str,
        params: &[ParamValue],
        cursor: Cursor,
    ) -> Result<Page, ClientError> {
        let response = self.request(&Request::CursorNext {
            name: name.to_string(),
            params: params.to_vec(),
            cursor,
        })?;
        decode_page(&response)
    }

    pub fn dml(&mut self, sql: &str, params: &[ParamValue]) -> Result<(), ClientError> {
        self.request(&Request::Dml {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        Ok(())
    }

    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Stats)
    }

    /// Force one admission re-validation sweep; returns the sweep summary
    /// (`sweep`, `samples_folded`, `redegraded`, `flagged`, ...).
    pub fn revalidate(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Revalidate)
    }

    /// Recompute the store's data placement from its current contents
    /// (quantile split points per namespace); returns the post-rebalance
    /// `shard_balance` report.
    pub fn rebalance(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Rebalance)
    }

    /// Testing hook: a clone of the underlying stream, for writing raw
    /// (possibly malformed) lines past the typed API.
    pub fn raw_stream(&self) -> io::Result<TcpStream> {
        self.writer.try_clone()
    }

    /// Testing hook: read and parse one raw response line.
    pub fn raw_read_line(&mut self) -> Result<Json, ClientError> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(crate::json::parse(response.trim()).map_err(ProtoError::Json)?)
    }
}

fn decode_page(response: &Json) -> Result<Page, ClientError> {
    let rows = response
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("missing rows".into())))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("row not array".into())))?
                .iter()
                .map(|v| value_from_json(v).map_err(ClientError::Proto))
                .collect::<Result<Vec<Value>, _>>()
                .map(Tuple::new)
        })
        .collect::<Result<Vec<Tuple>, _>>()?;
    let cursor = match response.get("cursor") {
        None | Some(Json::Null) => None,
        Some(Json::Str(hex)) => {
            let bytes = hex_decode(hex).ok_or_else(|| {
                ClientError::Proto(ProtoError::Malformed("cursor is not hex".into()))
            })?;
            Some(
                Cursor::from_bytes(&bytes)
                    .map_err(|e| ClientError::Proto(ProtoError::Malformed(e.to_string())))?,
            )
        }
        Some(other) => {
            return Err(ClientError::Proto(ProtoError::Malformed(format!(
                "bad cursor field: {}",
                other
            ))))
        }
    };
    Ok(Page { rows, cursor })
}
