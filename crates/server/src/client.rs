//! A small blocking client for the wire protocol — what the examples,
//! benches, and differential tests drive the server with.
//!
//! The client speaks either codec through the same [`Wire`] seam the
//! server uses: [`Client::connect`] opens a JSON (v2) connection,
//! [`Client::connect_binary`] negotiates binary v3 (magic preamble, hello
//! frame — and fails cleanly against a v2-only server, see
//! [`crate::binary`]). Every typed method behaves identically on both.
//!
//! Two ways to amortize round trips (PROTOCOL.md §5–6): a [`Pipeline`]
//! queues many independent requests and flushes them as one write (the
//! server answers in completion order; the pipeline reassembles
//! positionally by id), and [`Client::execute_batch`] ships many
//! sub-requests in a single frame answered by a single response (the
//! server runs them sequentially on one session, so a write is visible
//! to the read after it).

use crate::binary::{self, BinaryWire};
use crate::json::Json;
use crate::protocol::{
    attach_id, hex_decode, value_from_json, Envelope, ProtoError, Request, RequestId,
};
use crate::wire::{JsonWire, Wire};
use piql_core::plan::params::ParamValue;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::Cursor;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    Proto(ProtoError),
    /// The server answered `{"ok":false,...}`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One page of results.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    pub rows: Vec<Tuple>,
    pub cursor: Option<Cursor>,
}

/// A connected protocol client (either codec; see [`Client::connect`] and
/// [`Client::connect_binary`]).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// The codec this connection negotiated.
    wire: Box<dyn Wire>,
    /// Reused read-side frame scratch.
    frame: Vec<u8>,
    /// Reused write-side encode scratch.
    scratch: Vec<u8>,
    /// Monotonic source of pipeline request ids (unique per connection,
    /// which is all the protocol requires).
    next_id: i64,
}

impl Client {
    /// Connect speaking the JSON line protocol (v2, the compatibility
    /// default — works against every server).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            wire: Box::new(JsonWire),
            frame: Vec::new(),
            scratch: Vec::new(),
            next_id: 1,
        })
    }

    /// Connect speaking binary v3: sends the magic preamble and requires
    /// the server's hello. Against a v2-only server this fails with a
    /// clean `InvalidData` ("server does not speak v3") instead of
    /// hanging — the JSON error line the old server answers with reads as
    /// an over-cap frame length (see [`crate::binary`]).
    pub fn connect_binary(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        writer.write_all(&binary::MAGIC)?;
        writer.flush()?;
        let wire = BinaryWire;
        let mut frame = Vec::new();
        if !wire.read_frame(&mut reader, &mut frame)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before the v3 hello",
            ));
        }
        let version = binary::parse_hello(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if version != binary::VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "server speaks binary v{version}, this client speaks v{}",
                    binary::VERSION
                ),
            ));
        }
        Ok(Client {
            writer,
            reader,
            wire: Box::new(wire),
            frame,
            scratch: Vec::new(),
            next_id: 1,
        })
    }

    /// Protocol version this connection negotiated (2 or 3).
    pub fn wire_version(&self) -> u8 {
        self.wire.version()
    }

    /// Send one request, read one response object (the raw envelope,
    /// `ok` included).
    pub fn request_raw(&mut self, request: &Request) -> Result<Json, ClientError> {
        self.scratch.clear();
        self.wire.encode_envelope(
            &Envelope {
                id: None,
                request: request.clone(),
            },
            &mut self.scratch,
        );
        self.writer.write_all(&self.scratch)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read and decode one response frame. The correlation id — carried
    /// in-body by v2, in the frame header by v3 — is attached into the
    /// returned object either way, so callers see one shape.
    fn read_response(&mut self) -> Result<Json, ClientError> {
        if !self.wire.read_frame(&mut self.reader, &mut self.frame)? {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let (id, mut json) = self.wire.decode_response(&self.frame)?;
        if let Some(id) = id {
            attach_id(&mut json, &id);
        }
        Ok(json)
    }

    /// Send one request; error if the server answered `ok = false`.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        let response = self.request_raw(request)?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            _ => Err(ClientError::Server(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            )),
        }
    }

    /// Register a statement; returns the admission envelope (even when
    /// the verdict is a rejection — that is a successful protocol exchange).
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<Json, ClientError> {
        self.request(&Request::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })
    }

    /// Execute a registered statement.
    pub fn execute(
        &mut self,
        name: &str,
        params: &[ParamValue],
        cursor: Option<Cursor>,
    ) -> Result<Page, ClientError> {
        let response = self.request(&Request::Execute {
            name: name.to_string(),
            params: params.to_vec(),
            cursor,
        })?;
        decode_page(&response)
    }

    /// Resume a paginated statement from a cursor.
    pub fn cursor_next(
        &mut self,
        name: &str,
        params: &[ParamValue],
        cursor: Cursor,
    ) -> Result<Page, ClientError> {
        let response = self.request(&Request::CursorNext {
            name: name.to_string(),
            params: params.to_vec(),
            cursor,
        })?;
        decode_page(&response)
    }

    pub fn dml(&mut self, sql: &str, params: &[ParamValue]) -> Result<(), ClientError> {
        self.request(&Request::Dml {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        Ok(())
    }

    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Stats)
    }

    /// Force one admission re-validation sweep; returns the sweep summary
    /// (`sweep`, `samples_folded`, `redegraded`, `flagged`, ...).
    pub fn revalidate(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Revalidate)
    }

    /// Recompute the store's data placement from its current contents
    /// (quantile split points per namespace); returns the post-rebalance
    /// `shard_balance` report.
    pub fn rebalance(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Rebalance)
    }

    /// Checkpoint the server's durable state now (rotates the WAL and
    /// compacts it behind the snapshot); returns the snapshot summary.
    /// Errors on servers running without durability.
    pub fn snapshot(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Snapshot)
    }

    /// Audit a *prepared* statement: returns the static auditor's report
    /// (the `explain` object — bound-derivation tree with provenance,
    /// cost-term attribution, and structured diagnostics) for the plan as
    /// currently installed. Errors when `name` is not registered.
    pub fn explain(&mut self, name: &str) -> Result<Json, ClientError> {
        let response = self.request(&Request::Explain {
            name: Some(name.to_string()),
            sql: None,
        })?;
        explain_field(response)
    }

    /// Audit a *candidate* statement without registering it: the same
    /// report as [`Client::explain`], for SQL compiled against the
    /// server's catalog on the fly. Rejections don't error — they come
    /// back as the report's `outcome`/`diagnostics`.
    pub fn explain_sql(&mut self, sql: &str) -> Result<Json, ClientError> {
        let response = self.request(&Request::Explain {
            name: None,
            sql: Some(sql.to_string()),
        })?;
        explain_field(response)
    }

    /// Start a [`Pipeline`]: queue any number of requests, then
    /// [`Pipeline::flush`] them as one write and collect the responses
    /// positionally — N statements, ~1 round trip.
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline {
            client: self,
            buffer: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Ship `requests` as one `batch` line and return the per-sub-request
    /// response envelopes, positionally. The protocol exchange succeeding
    /// does not mean every sub-request did — inspect each entry's `ok`
    /// (a failing sub-request does not abort the ones after it).
    pub fn execute_batch(&mut self, requests: &[Request]) -> Result<Vec<Json>, ClientError> {
        let response = self.request(&Request::Batch {
            requests: requests.to_vec(),
        })?;
        let results = response
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("missing results".into())))?;
        Ok(results.to_vec())
    }

    /// Testing hook: a clone of the underlying stream, for writing raw
    /// (possibly malformed) lines past the typed API.
    pub fn raw_stream(&self) -> io::Result<TcpStream> {
        self.writer.try_clone()
    }

    /// Testing hook: read and decode one raw response frame (the id, if
    /// any, attached in-body whatever the codec).
    pub fn raw_read_line(&mut self) -> Result<Json, ClientError> {
        self.read_response()
    }
}

/// A handle over a [`Client`] that queues requests locally and ships them
/// all in one write. Each queued request gets a client-assigned id, so
/// the server may answer in completion order; [`Pipeline::flush`] matches
/// responses back to queue positions. Dropping an unflushed pipeline
/// transmits nothing.
pub struct Pipeline<'a> {
    client: &'a mut Client,
    /// Encoded-but-untransmitted request frames.
    buffer: Vec<u8>,
    /// Ids of queued requests, in queue order.
    pending: Vec<RequestId>,
}

impl Pipeline<'_> {
    /// Queue one request; returns its position among this pipeline's
    /// results. Nothing is transmitted until [`Pipeline::flush`].
    pub fn queue(&mut self, request: &Request) -> usize {
        let id = RequestId::Int(self.client.next_id);
        self.client.next_id += 1;
        self.client.wire.encode_envelope(
            &Envelope {
                id: Some(id.clone()),
                request: request.clone(),
            },
            &mut self.buffer,
        );
        self.pending.push(id);
        self.pending.len() - 1
    }

    /// Convenience: queue an `execute` of a registered statement.
    pub fn queue_execute(&mut self, name: &str, params: &[ParamValue]) -> usize {
        self.queue(&Request::Execute {
            name: name.to_string(),
            params: params.to_vec(),
            cursor: None,
        })
    }

    /// Queued requests not yet flushed.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Send every queued request in one write and collect the raw
    /// response envelopes, positionally, whatever order the server
    /// completed them in. Per-request failures ride in their envelope
    /// (`ok:false`); `Err` here means the exchange itself broke. The
    /// pipeline is empty again afterwards and can be reused.
    pub fn flush(&mut self) -> Result<Vec<Json>, ClientError> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        self.client.writer.write_all(&self.buffer)?;
        self.client.writer.flush()?;
        self.buffer.clear();
        let mut slots: Vec<Option<Json>> = self.pending.iter().map(|_| None).collect();
        for _ in 0..slots.len() {
            let response = self.client.read_response()?;
            let id = response
                .get("id")
                .map(RequestId::from_json)
                .transpose()
                .map_err(ClientError::Proto)?
                .ok_or_else(|| {
                    ClientError::Proto(ProtoError::Malformed(
                        "pipelined response carries no id".into(),
                    ))
                })?;
            let slot = self
                .pending
                .iter()
                .position(|p| *p == id)
                .filter(|&i| slots[i].is_none())
                .ok_or_else(|| {
                    ClientError::Proto(ProtoError::Malformed(format!(
                        "response for unknown or duplicate id '{id}'"
                    )))
                })?;
            slots[slot] = Some(response);
        }
        self.pending.clear();
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect())
    }
}

/// Extract the `explain` object from an `explain` response envelope.
fn explain_field(response: Json) -> Result<Json, ClientError> {
    response
        .get("explain")
        .cloned()
        .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("missing explain".into())))
}

/// Decode an `execute`/`cursor-next` response envelope into a [`Page`]
/// (public so pipeline and batch callers can decode positional results).
pub fn decode_page(response: &Json) -> Result<Page, ClientError> {
    let rows = response
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("missing rows".into())))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| ClientError::Proto(ProtoError::Malformed("row not array".into())))?
                .iter()
                .map(|v| value_from_json(v).map_err(ClientError::Proto))
                .collect::<Result<Vec<Value>, _>>()
                .map(Tuple::new)
        })
        .collect::<Result<Vec<Tuple>, _>>()?;
    let cursor = match response.get("cursor") {
        None | Some(Json::Null) => None,
        Some(Json::Str(hex)) => {
            let bytes = hex_decode(hex).ok_or_else(|| {
                ClientError::Proto(ProtoError::Malformed("cursor is not hex".into()))
            })?;
            Some(
                Cursor::from_bytes(&bytes)
                    .map_err(|e| ClientError::Proto(ProtoError::Malformed(e.to_string())))?,
            )
        }
        Some(other) => {
            return Err(ClientError::Proto(ProtoError::Malformed(format!(
                "bad cursor field: {}",
                other
            ))))
        }
    };
    Ok(Page { rows, cursor })
}
