//! Deterministic model stores for harnesses.
//!
//! A real deployment trains the §6.1 operator models by observing its
//! store (see `piql_predict::train`). Tests, examples, and benches need
//! something faster and fully predictable, so this module fabricates a
//! [`ModelStore`] from a linear cost model: an operator touching `r` rows
//! is recorded as `base_us + per_row_us * r` (with a small spread so the
//! histograms are not degenerate). The resulting admission decisions are
//! then exact functions of a query's compiled bounds — which is the
//! property the success-tolerance tests pin down.

use piql_predict::{ModelStore, OpKind, SloPredictor, ALPHA_GRID, BETA_GRID};

/// α_j values fabricated for SortedIndexJoin keys. A subset of
/// [`ALPHA_GRID`] so the store's ceil-lookup lands on exact entries.
const ALPHA_J_GRID: &[u32] = &[1, 5, 10, 25, 50];

/// Build a [`SloPredictor`] whose predicted latency for an operator
/// touching `r` rows is `base_us + per_row_us * r` microseconds (±25%
/// histogram spread), identical across `intervals` intervals.
pub fn linear_predictor(base_us: u64, per_row_us: u64, intervals: usize) -> SloPredictor {
    SloPredictor::new(linear_model_store(base_us, per_row_us, intervals))
}

/// The underlying store of [`linear_predictor`].
pub fn linear_model_store(base_us: u64, per_row_us: u64, intervals: usize) -> ModelStore {
    let mut store = ModelStore::new(intervals);
    for interval in 0..intervals {
        for &beta in BETA_GRID {
            for &alpha_c in ALPHA_GRID {
                for (op, alpha_js) in [
                    (OpKind::IndexScan, &[1u32][..]),
                    (OpKind::IndexFKJoin, &[1u32][..]),
                    (OpKind::SortedIndexJoin, ALPHA_J_GRID),
                ] {
                    for &alpha_j in alpha_js {
                        let key = piql_predict::ModelKey {
                            op,
                            alpha_c,
                            alpha_j,
                            beta,
                        };
                        let rows = alpha_c as u64 * alpha_j as u64;
                        let us = base_us + per_row_us * rows;
                        store.record(interval, key, us);
                        store.record(interval, key, us + us / 10);
                        store.record(interval, key, us + us / 4);
                    }
                }
            }
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabricated_store_scales_linearly_with_rows() {
        let store = linear_model_store(200, 100, 2);
        let h = |alpha_c: u32, alpha_j: u32, op| {
            store
                .lookup(
                    0,
                    piql_predict::ModelKey {
                        op,
                        alpha_c,
                        alpha_j,
                        beta: 40,
                    },
                )
                .expect("key present")
                .to_distribution()
                .quantile_ms(0.99)
        };
        let small = h(10, 1, OpKind::IndexScan);
        let large = h(100, 1, OpKind::IndexScan);
        assert!(large > small * 5.0, "{large} vs {small}");
        let join = h(100, 10, OpKind::SortedIndexJoin);
        assert!(join > large * 5.0, "{join} vs {large}");
    }
}
