//! A minimal JSON value, parser, and writer.
//!
//! The wire protocol is newline-delimited JSON; the workspace is built
//! offline (no serde), so this module hand-rolls the ~RFC 8259 subset the
//! protocol needs. Integers are kept distinct from floats ([`Json::Int`] vs
//! [`Json::Float`]) because `Value::Timestamp`/`Value::BigInt` payloads
//! exceed the 2^53 range where f64 round-trips i64 exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document. Objects use a `BTreeMap` so serialization is
/// deterministic — the differential tests compare protocol bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // keep floats distinguishable from ints on re-parse
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes compactly (no whitespace), deterministically.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Parse errors carry the byte offset for debuggability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing garbage"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        at,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), JsonError> {
    // `get` (not slicing) so a truncated input can never panic, wherever
    // the cursor ended up
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(token.as_bytes()))
    {
        *pos += token.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{token}'")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(
                            bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| err(*pos, "truncated \\u escape"))?,
                        )
                        .map_err(|_| err(*pos, "bad \\u escape"))?;
                        let mut cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // surrogate pair
                        if (0xD800..0xDC00).contains(&cp)
                            && bytes.get(*pos + 1..*pos + 3) == Some(b"\\u")
                        {
                            let hex2 = std::str::from_utf8(
                                bytes
                                    .get(*pos + 3..*pos + 7)
                                    .ok_or_else(|| err(*pos, "truncated surrogate"))?,
                            )
                            .map_err(|_| err(*pos, "bad surrogate"))?;
                            let lo = u32::from_str_radix(hex2, 16)
                                .map_err(|_| err(*pos, "bad surrogate"))?;
                            if (0xDC00..0xE000).contains(&lo) {
                                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                *pos += 6;
                            }
                        }
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar; every exit is an error, never a
                // panic, even on truncated or invalid input
                let rest = bytes
                    .get(*pos..)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| err(*pos, "invalid utf-8"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| err(*pos, "unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(err(start, "expected value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| err(start, "bad number"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| err(start, "bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"-42"#,
            r#"1300000000000123"#,
            r#"1.5"#,
            r#""hi \"there\"\n""#,
            r#"[1,2,[3,null]]"#,
            r#"{"a":1,"b":[true,"x"],"c":{"d":null}}"#,
        ];
        for c in cases {
            let v = parse(c).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{c}");
        }
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(parse("5").unwrap(), Json::Int(5));
        assert_eq!(parse("5.0").unwrap(), Json::Float(5.0));
        assert_eq!(Json::Float(5.0).to_string(), "5.0");
        assert_eq!(
            parse(&Json::Float(5.0).to_string()).unwrap(),
            Json::Float(5.0)
        );
        // i64 beyond 2^53 must round-trip exactly
        let big = 9_007_199_254_740_993i64;
        assert_eq!(parse(&Json::Int(big).to_string()).unwrap(), Json::Int(big));
    }

    #[test]
    fn unicode_and_errors() {
        assert_eq!(parse(r#""éA""#).unwrap(), Json::Str("éA".to_string()));
        assert_eq!(parse(r#""🦀""#).unwrap(), Json::Str("🦀".into()));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn malformed_escapes_error_instead_of_panicking() {
        // regression: truncated/invalid escapes at end-of-input must
        // return `JsonError`, never panic the connection handler
        for case in [
            "\"\\",           // escape introducer at EOF
            "\"\\u",          // \u at EOF
            "\"\\u12",        // truncated hex
            "\"\\u123",       // still truncated
            "\"\\uZZZZ\"",    // bad hex digits
            "\"\\x\"",        // unknown escape
            "\"abc",          // unterminated string
            "\"\\ud800\\u\"", // high surrogate then truncated escape
            "\"\\ud800\\u12", // high surrogate then truncated hex
            "{\"k\":",        // value cut off
            "{\"k\"",         // colon cut off
            "[\"\\u",         // nested truncation
        ] {
            assert!(parse(case).is_err(), "{case:?} should be an error");
        }
        // surrogate pairs decode; a lone surrogate degrades to U+FFFD
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"\\ud800\"").unwrap(), Json::Str("\u{FFFD}".into()));
    }
}
