//! # piql-server
//!
//! A success-tolerant query service fronting the PIQL engine — the serving
//! system the paper's story culminates in (§6, §10): because every
//! compiled query carries a static bound and a compile-time latency
//! prediction, the service can *refuse to execute* queries it cannot serve
//! within its SLO, before they touch storage.
//!
//! Pieces:
//!
//! * [`StatementRegistry`] — prepared statements with **SLO admission
//!   control**: register a PIQL query and it is compiled once and run
//!   through the §6 predictor; unbounded queries are rejected with the
//!   Performance Insight report, over-SLO queries are rejected or admitted
//!   with an advisor-degraded LIMIT, and only admitted statements ever
//!   issue storage requests.
//! * [`PiqlServer`] — a multi-threaded TCP front-end speaking a
//!   newline-delimited JSON protocol (`prepare` / `execute` /
//!   `cursor-next` / `dml` / `stats` / `revalidate`) with per-connection
//!   sessions and serialized pagination cursors that survive reconnects.
//! * [`Client`] — a small blocking client for that protocol.
//! * [`Revalidator`] — the live-model feedback loop: observed operator
//!   latencies drain from the backend into the shared §6.1 models, and a
//!   periodic sweep re-predicts every registered statement, re-degrading
//!   or flagging those whose refreshed p99 drifted over the SLO (and
//!   relaxing/recovering them when the store speeds back up).
//! * The real-time backend itself lives in `piql_kv::LiveCluster`
//!   (re-exported here) so the engine stack runs on wall-clock storage.

pub mod client;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod testkit;

pub use client::{Client, ClientError, Page};
pub use json::{Json, JsonError};
pub use protocol::{ProtoError, Request};
pub use registry::{
    Admission, DriftAction, DriftEvent, RegisteredStatement, RegistryCounters, RegistryError,
    RevalidationSummary, Revalidator, SloConfig, StatementRegistry,
};
pub use server::PiqlServer;

pub use piql_kv::{LiveCluster, LiveConfig};
