//! # piql-server
//!
//! A success-tolerant query service fronting the PIQL engine — the serving
//! system the paper's story culminates in (§6, §10): because every
//! compiled query carries a static bound and a compile-time latency
//! prediction, the service can *refuse to execute* queries it cannot serve
//! within its SLO, before they touch storage.
//!
//! Pieces:
//!
//! * [`StatementRegistry`] — prepared statements with **SLO admission
//!   control**: register a PIQL query and it is compiled once and run
//!   through the §6 predictor; unbounded queries are rejected with the
//!   Performance Insight report, over-SLO queries are rejected or admitted
//!   with an advisor-degraded LIMIT, and only admitted statements ever
//!   issue storage requests.
//! * [`PiqlServer`] — a multi-threaded TCP front-end speaking the
//!   newline-delimited JSON protocol specified in `PROTOCOL.md`
//!   (`prepare` / `execute` / `cursor-next` / `dml` / `batch` / `stats` /
//!   `revalidate` / `rebalance`), **pipelined**: each connection is a
//!   reader that decodes lines continuously plus a writer that streams
//!   completed responses back, with `id`-tagged requests handled
//!   concurrently on a dispatch pool and answered in completion order
//!   (id-less requests keep strict one-at-a-time ordering). Pagination
//!   cursors are serialized, client-held state that survives reconnects.
//! * [`Client`] — a small blocking client for that protocol, with a
//!   [`Pipeline`] handle and [`Client::execute_batch`] for amortizing a
//!   page-view's N statements into ~1 round trip.
//! * [`Revalidator`] — the live-model feedback loop: observed operator
//!   latencies drain from the backend into the shared §6.1 models, and a
//!   periodic sweep re-predicts every registered statement, re-degrading
//!   or flagging those whose refreshed p99 drifted over the SLO (and
//!   relaxing/recovering them when the store speeds back up).
//! * [`open_durable`] — the durable flavor of the stack: the same
//!   cluster/registry pair backed by `piql_durability` (write-ahead log
//!   with group commit, periodic snapshots, full-state crash recovery),
//!   so data, prepared statements, and live-trained models survive a
//!   `kill -9` and admission is re-validated at boot.
//! * The real-time backend itself lives in `piql_kv::LiveCluster`
//!   (re-exported here) so the engine stack runs on wall-clock storage.

pub mod binary;
pub mod budget;
pub mod client;
pub mod durable;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod testkit;
pub mod wire;

pub use binary::BinaryWire;
pub use budget::{BudgetDecision, BudgetPermit, BudgetPolicy, BudgetSnapshot, TenantBudget};
pub use client::{decode_page, Client, ClientError, Page, Pipeline};
pub use durable::{open_durable, DurableOptions, DurableStack, Readmission, SnapshotDaemon};
pub use json::{Json, JsonError};
pub use protocol::{Envelope, ProtoError, Request, RequestId};
pub use registry::{
    Admission, DriftAction, DriftEvent, DurabilityControl, ExecOutcome, FastKeyPart, FastPointPlan,
    OverloadConfig, RegisteredStatement, RegistryCounters, RegistryError, RevalidationSummary,
    Revalidator, SloConfig, StatementJournal, StatementRegistry,
};
pub use server::{BinaryConn, PiqlServer, ServerTuning};
pub use wire::{JsonWire, Wire};

pub use piql_kv::{LiveCluster, LiveConfig};
