//! Per-tenant admission budgets.
//!
//! A [`TenantBudget`] bounds how many statement executions a tenant may
//! have in flight at once. The registry resolves a statement's tenant from
//! its name prefix (`"t0.point"` → tenant `"t0"`) and consults the budget
//! before executing. When the budget is exhausted the configured
//! [`BudgetPolicy`] decides the outcome:
//!
//! * **Reject** — fail immediately with a `budget-exceeded` error the
//!   client can retry against.
//! * **Queue** — wait up to a bounded time for a permit, then reject.
//! * **Shed** — admit into a small overflow band but serve the statement's
//!   pre-compiled *shed plan* (a tighter-bound rewrite), trading result
//!   completeness for latency, exactly the paper's degrade escape hatch.
//!
//! Permits are RAII ([`BudgetPermit`]): they release on every exit path —
//! success, error return, or panic-unwind inside the executor — so the
//! in-flight count can neither go negative nor leak across disconnects.
//! The default budget is unlimited and takes no lock at all on the admit
//! path, keeping single-tenant deployments at their current cost.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use piql_analysis::ordered::{Condvar, Mutex};
use piql_analysis::rank;

/// Sentinel stored in `TenantBudget.capacity` meaning "no limit".
const UNLIMITED: u32 = u32::MAX;

/// What happens to an execution that arrives while the tenant's budget is
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Fail immediately with a `budget-exceeded` error.
    Reject,
    /// Wait up to `max_wait` for a permit, then reject.
    Queue {
        /// Longest a request may wait for a permit before rejection.
        max_wait: Duration,
    },
    /// Admit into a bounded overflow band, serving the degraded (shed)
    /// plan instead of the full one.
    Shed,
}

impl BudgetPolicy {
    /// Stable lowercase name used in `stats` replies and scenario specs.
    pub fn name(&self) -> &'static str {
        match self {
            BudgetPolicy::Reject => "reject",
            BudgetPolicy::Queue { .. } => "queue",
            BudgetPolicy::Shed => "shed",
        }
    }
}

// Policy is stored as atomics so the admit path never takes a config lock.
const POLICY_REJECT: u8 = 0;
const POLICY_QUEUE: u8 = 1;
const POLICY_SHED: u8 = 2;

/// Outcome of [`TenantBudget::admit`].
pub enum BudgetDecision {
    /// Execute the full plan. Carries a permit when the budget is bounded.
    Go(Option<BudgetPermit>),
    /// Execute the shed (degraded) plan; the permit covers the overflow
    /// band slot.
    Shed(BudgetPermit),
    /// Refuse the execution.
    Reject,
}

/// Point-in-time budget counters for `stats`.
#[derive(Debug, Clone)]
pub struct BudgetSnapshot {
    pub tenant: String,
    pub capacity: Option<u32>,
    pub policy: &'static str,
    pub in_flight: u32,
    pub admitted: u64,
    pub rejected: u64,
    pub queued: u64,
    pub queue_timeouts: u64,
    pub shed: u64,
}

struct InFlight {
    count: u32,
}

/// One tenant's admission state. Shared between the registry (configure,
/// stats) and every executing request (admit/release).
pub struct TenantBudget {
    name: String,
    /// `UNLIMITED` means no cap; anything else is the permit count.
    capacity: AtomicU32,
    policy: AtomicU32,
    queue_wait_ms: AtomicU64,
    /// Set once the budget has been configured explicitly (per-tenant
    /// override); defaults re-applied via `set_overload` skip pinned
    /// budgets.
    pinned: AtomicBool,
    in_flight: Mutex<InFlight>,
    available: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    queue_timeouts: AtomicU64,
    shed_count: AtomicU64,
}

impl TenantBudget {
    /// A budget for `name` with the given capacity (`None` = unlimited)
    /// and policy.
    pub fn new(name: &str, capacity: Option<u32>, policy: BudgetPolicy) -> Arc<Self> {
        let budget = Arc::new(TenantBudget {
            name: name.to_string(),
            capacity: AtomicU32::new(UNLIMITED),
            policy: AtomicU32::new(u32::from(POLICY_REJECT)),
            queue_wait_ms: AtomicU64::new(0),
            pinned: AtomicBool::new(false),
            in_flight: Mutex::new(
                rank::TENANT_BUDGET,
                "TenantBudget.in_flight",
                InFlight { count: 0 },
            ),
            available: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            queue_timeouts: AtomicU64::new(0),
            shed_count: AtomicU64::new(0),
        });
        budget.apply(capacity, policy);
        budget
    }

    /// Tenant name this budget governs.
    pub fn tenant(&self) -> &str {
        &self.name
    }

    /// True when the budget imposes no cap — the admit fast path.
    pub fn is_unlimited(&self) -> bool {
        self.capacity.load(Ordering::Acquire) == UNLIMITED
    }

    fn apply(&self, capacity: Option<u32>, policy: BudgetPolicy) {
        let (code, wait_ms) = match policy {
            BudgetPolicy::Reject => (POLICY_REJECT, 0),
            BudgetPolicy::Queue { max_wait } => {
                (POLICY_QUEUE, max_wait.as_millis().min(3_600_000) as u64)
            }
            BudgetPolicy::Shed => (POLICY_SHED, 0),
        };
        self.policy.store(u32::from(code), Ordering::Release);
        self.queue_wait_ms.store(wait_ms, Ordering::Release);
        self.capacity
            .store(capacity.unwrap_or(UNLIMITED), Ordering::Release);
        // Raising (or removing) the cap may unblock queued waiters.
        self.available.notify_all();
    }

    /// Explicit per-tenant configuration: applies and pins, so later
    /// default sweeps leave it alone.
    pub fn configure(&self, capacity: Option<u32>, policy: BudgetPolicy) {
        self.pinned.store(true, Ordering::Release);
        self.apply(capacity, policy);
    }

    /// Apply registry-wide defaults unless this budget was configured
    /// explicitly.
    pub fn apply_default(&self, capacity: Option<u32>, policy: BudgetPolicy) {
        if !self.pinned.load(Ordering::Acquire) {
            self.apply(capacity, policy);
        }
    }

    fn current_policy(&self) -> BudgetPolicy {
        match self.policy.load(Ordering::Acquire) as u8 {
            POLICY_QUEUE => BudgetPolicy::Queue {
                max_wait: Duration::from_millis(self.queue_wait_ms.load(Ordering::Acquire)),
            },
            POLICY_SHED => BudgetPolicy::Shed,
            _ => BudgetPolicy::Reject,
        }
    }

    fn take_permit(self: &Arc<Self>) -> BudgetPermit {
        BudgetPermit {
            budget: Arc::clone(self),
        }
    }

    /// Decide the fate of one execution. Cheap (two atomic loads) for
    /// unlimited budgets; bounded budgets take the permit mutex briefly.
    pub fn admit(self: &Arc<Self>) -> BudgetDecision {
        let cap = self.capacity.load(Ordering::Acquire);
        if cap == UNLIMITED {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return BudgetDecision::Go(None);
        }
        let mut state = self.in_flight.lock();
        if state.count < cap {
            state.count += 1;
            drop(state);
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return BudgetDecision::Go(Some(self.take_permit()));
        }
        match self.current_policy() {
            BudgetPolicy::Reject => {
                drop(state);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                BudgetDecision::Reject
            }
            BudgetPolicy::Shed => {
                // Overflow band: up to capacity extra slots run the shed
                // plan, so degraded work stays bounded too.
                let band = cap.saturating_mul(2).max(cap.saturating_add(1));
                if state.count < band {
                    state.count += 1;
                    drop(state);
                    self.shed_count.fetch_add(1, Ordering::Relaxed);
                    BudgetDecision::Shed(self.take_permit())
                } else {
                    drop(state);
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    BudgetDecision::Reject
                }
            }
            BudgetPolicy::Queue { max_wait } => {
                let deadline = Instant::now()
                    .checked_add(max_wait)
                    .unwrap_or_else(|| Instant::now() + Duration::from_secs(3600));
                loop {
                    // Re-read: configure() may have raised or removed the
                    // cap while we waited.
                    let cap = self.capacity.load(Ordering::Acquire);
                    if cap == UNLIMITED || state.count < cap {
                        if cap != UNLIMITED {
                            state.count += 1;
                        }
                        drop(state);
                        self.admitted.fetch_add(1, Ordering::Relaxed);
                        self.queued.fetch_add(1, Ordering::Relaxed);
                        let permit = if cap == UNLIMITED {
                            None
                        } else {
                            Some(self.take_permit())
                        };
                        return BudgetDecision::Go(permit);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        drop(state);
                        self.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        return BudgetDecision::Reject;
                    }
                    let (guard, timeout) = self.available.wait_timeout(state, deadline - now);
                    state = guard;
                    if timeout.timed_out() && state.count >= self.capacity.load(Ordering::Acquire) {
                        drop(state);
                        self.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        return BudgetDecision::Reject;
                    }
                }
            }
        }
    }

    fn release(&self) {
        let mut state = self.in_flight.lock();
        state.count = state.count.saturating_sub(1);
        drop(state);
        self.available.notify_one();
    }

    /// Current in-flight count (test/stats visibility).
    pub fn in_flight(&self) -> u32 {
        self.in_flight.lock().count
    }

    /// Counters for the `stats` reply.
    pub fn snapshot(&self) -> BudgetSnapshot {
        let cap = self.capacity.load(Ordering::Acquire);
        BudgetSnapshot {
            tenant: self.name.clone(),
            capacity: if cap == UNLIMITED { None } else { Some(cap) },
            policy: self.current_policy().name(),
            in_flight: self.in_flight(),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            queue_timeouts: self.queue_timeouts.load(Ordering::Relaxed),
            shed: self.shed_count.load(Ordering::Relaxed),
        }
    }
}

/// RAII execution permit: dropping it returns the slot to the tenant's
/// budget and wakes one queued waiter.
pub struct BudgetPermit {
    budget: Arc<TenantBudget>,
}

impl Drop for BudgetPermit {
    fn drop(&mut self) {
        self.budget.release();
    }
}
