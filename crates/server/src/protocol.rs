//! The newline-delimited JSON wire protocol.
//!
//! One request object per line, one response object per line. Commands:
//!
//! | cmd           | fields                                | response |
//! |---------------|---------------------------------------|----------|
//! | `prepare`     | `name`, `sql`                         | admission verdict + plan facts |
//! | `execute`     | `name`, `params`, optional `cursor`   | `rows` + optional `cursor` |
//! | `cursor-next` | `name`, `params`, required `cursor`   | same as `execute` |
//! | `dml`         | `sql`, `params`                       | `ok` |
//! | `stats`       | —                                     | service counters + per-statement latency, refreshed predictions, drift history, shard balance |
//! | `revalidate`  | —                                     | forces one re-validation sweep; returns the sweep summary |
//! | `rebalance`   | —                                     | recomputes the store's data placement (quantile split points); returns the post-rebalance shard balance |
//!
//! Values are tagged one-field objects (`{"int":5}`, `{"ts":1699...}`,
//! `{"str":"x"}`, …) so every [`Value`] round-trips exactly — including
//! `BigInt`/`Timestamp` beyond 2^53 and the `Int`/`BigInt` distinction a
//! bare JSON number would erase. Pagination cursors travel as hex so a
//! client can reconnect to any server and resume (§4.1 of the paper).

use crate::json::{Json, JsonError};
use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Cursor;
use std::fmt;

/// Protocol-level failures (distinct from query errors, which travel in
/// `{"ok":false,"error":...}` responses).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    Json(JsonError),
    /// Structurally valid JSON that is not a valid protocol message.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "{e}"),
            ProtoError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Json(e)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Prepare {
        name: String,
        sql: String,
    },
    Execute {
        name: String,
        params: Vec<ParamValue>,
        cursor: Option<Cursor>,
    },
    /// `execute` that *requires* a cursor (resuming pagination).
    CursorNext {
        name: String,
        params: Vec<ParamValue>,
        cursor: Cursor,
    },
    Dml {
        sql: String,
        params: Vec<ParamValue>,
    },
    Stats,
    /// Force one admission re-validation sweep (drain live samples, refresh
    /// the models, re-predict every registered statement). The sweep also
    /// runs periodically server-side; this verb makes drift handling
    /// deterministic for tests and operators.
    Revalidate,
    /// Recompute the backend's data placement from its current contents —
    /// re-split every namespace at learned key-distribution quantiles (the
    /// Director's job, §3). Sessions keep executing throughout; the reply
    /// carries the post-rebalance shard balance.
    Rebalance,
}

/// Encode one [`Value`] as a tagged object.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::obj([("int", Json::Int(*i as i64))]),
        Value::BigInt(i) => Json::obj([("big", Json::Int(*i))]),
        Value::Varchar(s) => Json::obj([("str", Json::str(s.clone()))]),
        Value::Bool(b) => Json::obj([("bool", Json::Bool(*b))]),
        Value::Timestamp(t) => Json::obj([("ts", Json::Int(*t))]),
        Value::Double(d) => Json::obj([("f", Json::Float(*d))]),
    }
}

/// Decode one tagged object back to a [`Value`].
pub fn value_from_json(j: &Json) -> Result<Value, ProtoError> {
    let malformed = || ProtoError::Malformed(format!("bad value: {}", j));
    match j {
        Json::Null => Ok(Value::Null),
        Json::Obj(m) => {
            // exactly one tag field; `{}` and multi-key objects are
            // malformed values, not panics (a hostile line must never kill
            // the connection handler)
            let mut fields = m.iter();
            let (Some((tag, inner)), None) = (fields.next(), fields.next()) else {
                return Err(malformed());
            };
            match (tag.as_str(), inner) {
                ("int", Json::Int(i)) => i32::try_from(*i).map(Value::Int).map_err(|_| malformed()),
                ("big", Json::Int(i)) => Ok(Value::BigInt(*i)),
                ("str", Json::Str(s)) => Ok(Value::Varchar(s.clone())),
                ("bool", Json::Bool(b)) => Ok(Value::Bool(*b)),
                ("ts", Json::Int(t)) => Ok(Value::Timestamp(*t)),
                // JSON has no Inf/NaN: the encoder writes {"f":null} for
                // non-finite doubles, which decodes to NaN (lossy but
                // round-trippable rather than a page-breaking error)
                ("f", Json::Null) => Ok(Value::Double(f64::NAN)),
                ("f", j) => j.as_f64().map(Value::Double).ok_or_else(malformed),
                _ => Err(malformed()),
            }
        }
        _ => Err(malformed()),
    }
}

pub fn row_to_json(row: &[Value]) -> Json {
    Json::Arr(row.iter().map(value_to_json).collect())
}

/// Parameters: a scalar travels as a tagged value, a collection (bound to
/// `IN [p MAX n]`) as an array of tagged values.
pub fn param_to_json(p: &ParamValue) -> Json {
    match p {
        ParamValue::Scalar(v) => value_to_json(v),
        ParamValue::Collection(vs) => Json::Arr(vs.iter().map(value_to_json).collect()),
    }
}

pub fn param_from_json(j: &Json) -> Result<ParamValue, ProtoError> {
    match j {
        Json::Arr(items) => Ok(ParamValue::Collection(
            items
                .iter()
                .map(value_from_json)
                .collect::<Result<_, _>>()?,
        )),
        other => value_from_json(other).map(ParamValue::Scalar),
    }
}

fn params_from_json(j: Option<&Json>) -> Result<Vec<ParamValue>, ProtoError> {
    match j {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items.iter().map(param_from_json).collect(),
        Some(other) => Err(ProtoError::Malformed(format!(
            "params must be an array, got {}",
            other
        ))),
    }
}

fn cursor_from_json(j: Option<&Json>) -> Result<Option<Cursor>, ProtoError> {
    match j {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(hex)) => {
            let bytes =
                hex_decode(hex).ok_or_else(|| ProtoError::Malformed("cursor is not hex".into()))?;
            Cursor::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| ProtoError::Malformed(e.to_string()))
        }
        Some(other) => Err(ProtoError::Malformed(format!(
            "cursor must be a hex string, got {}",
            other
        ))),
    }
}

pub fn cursor_to_json(cursor: &Option<Cursor>) -> Json {
    match cursor {
        Some(c) => Json::str(hex_encode(&c.to_bytes())),
        None => Json::Null,
    }
}

pub fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let j = crate::json::parse(line.trim())?;
    let cmd = j
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::Malformed("missing 'cmd'".into()))?;
    let name = |j: &Json| -> Result<String, ProtoError> {
        j.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::Malformed("missing 'name'".into()))
    };
    match cmd {
        "prepare" => Ok(Request::Prepare {
            name: name(&j)?,
            sql: j
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::Malformed("missing 'sql'".into()))?
                .to_string(),
        }),
        "execute" => Ok(Request::Execute {
            name: name(&j)?,
            params: params_from_json(j.get("params"))?,
            cursor: cursor_from_json(j.get("cursor"))?,
        }),
        "cursor-next" => {
            let cursor = cursor_from_json(j.get("cursor"))?
                .ok_or_else(|| ProtoError::Malformed("cursor-next requires a 'cursor'".into()))?;
            Ok(Request::CursorNext {
                name: name(&j)?,
                params: params_from_json(j.get("params"))?,
                cursor,
            })
        }
        "dml" => Ok(Request::Dml {
            sql: j
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::Malformed("missing 'sql'".into()))?
                .to_string(),
            params: params_from_json(j.get("params"))?,
        }),
        "stats" => Ok(Request::Stats),
        "revalidate" => Ok(Request::Revalidate),
        "rebalance" => Ok(Request::Rebalance),
        other => Err(ProtoError::Malformed(format!("unknown cmd '{other}'"))),
    }
}

/// Serialize a request (what clients send).
pub fn request_to_line(req: &Request) -> String {
    let j = match req {
        Request::Prepare { name, sql } => Json::obj([
            ("cmd", Json::str("prepare")),
            ("name", Json::str(name.clone())),
            ("sql", Json::str(sql.clone())),
        ]),
        Request::Execute {
            name,
            params,
            cursor,
        } => Json::obj([
            ("cmd", Json::str("execute")),
            ("name", Json::str(name.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
            ("cursor", cursor_to_json(cursor)),
        ]),
        Request::CursorNext {
            name,
            params,
            cursor,
        } => Json::obj([
            ("cmd", Json::str("cursor-next")),
            ("name", Json::str(name.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
            ("cursor", cursor_to_json(&Some(cursor.clone()))),
        ]),
        Request::Dml { sql, params } => Json::obj([
            ("cmd", Json::str("dml")),
            ("sql", Json::str(sql.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
        ]),
        Request::Stats => Json::obj([("cmd", Json::str("stats"))]),
        Request::Revalidate => Json::obj([("cmd", Json::str("revalidate"))]),
        Request::Rebalance => Json::obj([("cmd", Json::str("rebalance"))]),
    };
    j.to_string()
}

/// Build a success response envelope.
pub fn ok_response(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut m: std::collections::BTreeMap<String, Json> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    m.insert("ok".into(), Json::Bool(true));
    Json::Obj(m)
}

/// Build an error response envelope.
pub fn err_response(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str(message.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_engine::CursorState;

    #[test]
    fn value_tagging_roundtrips() {
        let values = [
            Value::Null,
            Value::Int(-5),
            Value::BigInt(9_007_199_254_740_993),
            Value::Varchar("héllo\nworld".into()),
            Value::Bool(true),
            Value::Timestamp(1_300_000_000_000_123),
            Value::Double(0.1),
        ];
        for v in &values {
            let j = value_to_json(v);
            let reparsed = crate::json::parse(&j.to_string()).unwrap();
            assert_eq!(&value_from_json(&reparsed).unwrap(), v);
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Prepare {
                name: "q1".into(),
                sql: "SELECT * FROM t WHERE k = <k>".into(),
            },
            Request::Execute {
                name: "q1".into(),
                params: vec![Value::Int(3).into(), Value::Varchar("x".into()).into()],
                cursor: None,
            },
            Request::CursorNext {
                name: "q1".into(),
                params: vec![],
                cursor: Cursor {
                    state: CursorState::ScanAfter {
                        last_key: vec![1, 2, 255],
                    },
                },
            },
            Request::Dml {
                sql: "INSERT INTO t VALUES (<a>)".into(),
                params: vec![
                    Value::Int(1).into(),
                    vec![Value::Int(2), Value::Int(3)].into(),
                ],
            },
            Request::Stats,
            Request::Revalidate,
            Request::Rebalance,
        ];
        for r in &reqs {
            assert_eq!(&parse_request(&request_to_line(r)).unwrap(), r);
        }
    }

    #[test]
    fn empty_and_multikey_objects_are_errors_not_panics() {
        // `{}` as a request line must produce a protocol error; pins the
        // unwrap-free field handling so no refactor can make a hostile
        // line panic the connection handler
        assert!(matches!(parse_request("{}"), Err(ProtoError::Malformed(_))));
        // `{}` and multi-tag objects as *values* are malformed too
        for line in [
            r#"{"cmd":"execute","name":"q","params":[{}]}"#,
            r#"{"cmd":"execute","name":"q","params":[{"int":1,"str":"x"}]}"#,
            r#"{"cmd":"execute","name":"q","params":[{"nope":1}]}"#,
        ] {
            assert!(
                matches!(parse_request(line), Err(ProtoError::Malformed(_))),
                "{line}"
            );
        }
        // truncated escapes surface as JSON errors, not panics
        for line in ["{\"cmd\":\"stats\"", r#"{"cmd":"stats","x":"\u12"#, "\"\\"] {
            assert!(
                matches!(parse_request(line), Err(ProtoError::Json(_))),
                "{line}"
            );
        }
    }

    #[test]
    fn hex_roundtrip_and_rejects() {
        assert_eq!(
            hex_decode(&hex_encode(&[0, 127, 255])).unwrap(),
            vec![0, 127, 255]
        );
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("not json").is_err());
    }
}
