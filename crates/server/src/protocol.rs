//! The newline-delimited JSON wire protocol.
//!
//! **The normative spec is `PROTOCOL.md` at the repository root** —
//! framing, every verb's request/response shape, error objects, and the
//! pipelining/ordering guarantees. This module is the reference codec for
//! that spec. Commands, in brief:
//!
//! | cmd           | fields                                | response |
//! |---------------|---------------------------------------|----------|
//! | `prepare`     | `name`, `sql`                         | admission verdict + plan facts |
//! | `execute`     | `name`, `params`, optional `cursor`   | `rows` + optional `cursor` |
//! | `cursor-next` | `name`, `params`, required `cursor`   | same as `execute` |
//! | `dml`         | `sql`, `params`                       | `ok` |
//! | `batch`       | `requests` (array of sub-requests)    | `results`: one response envelope per sub-request, positional |
//! | `stats`       | —                                     | service counters + per-statement latency, refreshed predictions, drift history, shard balance |
//! | `revalidate`  | —                                     | forces one re-validation sweep; returns the sweep summary |
//! | `rebalance`   | —                                     | recomputes the store's data placement (quantile split points); returns the post-rebalance shard balance |
//! | `snapshot`    | —                                     | checkpoints the durable state and compacts the WAL behind it; errors when the server runs without durability |
//! | `explain`     | `name` *or* `sql` (exactly one)       | the static auditor's bound-derivation tree + diagnostics for a prepared (`name`) or candidate (`sql`) statement |
//!
//! Every request may additionally carry a client-assigned `id` (integer
//! or string), echoed verbatim on its response. An `id` opts the request
//! into *pipelined* handling: the server may answer it out of order, in
//! completion order, so a slow `execute` never head-of-line-blocks a
//! cheap `stats`. Requests without an `id` keep the original strict
//! one-in-one-out ordering (see [`Envelope`] and PROTOCOL.md §5).
//!
//! Values are tagged one-field objects (`{"int":5}`, `{"ts":1699...}`,
//! `{"str":"x"}`, …) so every [`Value`] round-trips exactly — including
//! `BigInt`/`Timestamp` beyond 2^53 and the `Int`/`BigInt` distinction a
//! bare JSON number would erase. Pagination cursors travel as hex so a
//! client can reconnect to any server and resume (§4.1 of the paper).

use crate::json::{Json, JsonError};
use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Cursor;
use std::fmt;

/// Protocol-level failures (distinct from query errors, which travel in
/// `{"ok":false,"error":...}` responses).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoError {
    Json(JsonError),
    /// Structurally valid JSON that is not a valid protocol message.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Json(e) => write!(f, "{e}"),
            ProtoError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError::Json(e)
    }
}

/// A client-assigned request identifier: a JSON integer or string,
/// echoed verbatim on the response it answers. Presence of an id opts
/// the request into completion-order (pipelined) handling; see the
/// module docs and PROTOCOL.md §5.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestId {
    /// A numeric id (`"id":7`).
    Int(i64),
    /// A string id (`"id":"page-3"`).
    Str(String),
}

impl RequestId {
    /// The wire form of the id (what gets echoed).
    pub fn to_json(&self) -> Json {
        match self {
            RequestId::Int(i) => Json::Int(*i),
            RequestId::Str(s) => Json::str(s.clone()),
        }
    }

    /// Decode an `id` field. Only integers and strings are valid ids —
    /// floats, booleans, and structured values are malformed (a float id
    /// would not round-trip byte-exactly through every client).
    pub fn from_json(j: &Json) -> Result<RequestId, ProtoError> {
        match j {
            Json::Int(i) => Ok(RequestId::Int(*i)),
            Json::Str(s) => Ok(RequestId::Str(s.clone())),
            other => Err(ProtoError::Malformed(format!(
                "'id' must be an integer or string, got {other}"
            ))),
        }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestId::Int(i) => write!(f, "{i}"),
            RequestId::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for RequestId {
    fn from(i: i64) -> Self {
        RequestId::Int(i)
    }
}

impl From<&str> for RequestId {
    fn from(s: &str) -> Self {
        RequestId::Str(s.to_string())
    }
}

/// One request line as received: the command plus the optional
/// client-assigned [`RequestId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// `None` for legacy (strictly ordered) requests.
    pub id: Option<RequestId>,
    pub request: Request,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Prepare {
        name: String,
        sql: String,
    },
    Execute {
        name: String,
        params: Vec<ParamValue>,
        cursor: Option<Cursor>,
    },
    /// `execute` that *requires* a cursor (resuming pagination).
    CursorNext {
        name: String,
        params: Vec<ParamValue>,
        cursor: Cursor,
    },
    Dml {
        sql: String,
        params: Vec<ParamValue>,
    },
    Stats,
    /// Force one admission re-validation sweep (drain live samples, refresh
    /// the models, re-predict every registered statement). The sweep also
    /// runs periodically server-side; this verb makes drift handling
    /// deterministic for tests and operators.
    Revalidate,
    /// Recompute the backend's data placement from its current contents —
    /// re-split every namespace at learned key-distribution quantiles (the
    /// Director's job, §3). Sessions keep executing throughout; the reply
    /// carries the post-rebalance shard balance.
    Rebalance,
    /// Checkpoint the durable state now: rotate the write-ahead log, write
    /// a snapshot of the full state (data, DDL, statements, models), and
    /// delete the log segments behind it. Servers running without
    /// durability answer an error.
    Snapshot,
    /// Run the static workload auditor over one statement and return its
    /// bound-derivation tree with provenance, cost-term attribution, and
    /// structured diagnostics — without executing anything. Exactly one of
    /// `name` (a prepared statement, audited as currently installed) or
    /// `sql` (a candidate statement, audited against the catalog without
    /// registering it) must be present; carrying both or neither is
    /// malformed.
    Explain {
        name: Option<String>,
        sql: Option<String>,
    },
    /// Many sub-requests on one line, answered by one response whose
    /// `results` array carries one response envelope per sub-request,
    /// positionally. Sub-requests run **sequentially on one session** (a
    /// `dml` is visible to the `execute` after it), and a failing
    /// sub-request yields an `{"ok":false,...}` entry without aborting
    /// the rest — this is how a high-fan-out application server turns an
    /// N-statement page-view into one round trip (PAPER.md §2, Fig. 1).
    /// Batches cannot nest, and sub-requests carry no `id` (their
    /// position in `results` is their identity).
    Batch {
        requests: Vec<Request>,
    },
}

/// Encode one [`Value`] as a tagged object.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(i) => Json::obj([("int", Json::Int(*i as i64))]),
        Value::BigInt(i) => Json::obj([("big", Json::Int(*i))]),
        Value::Varchar(s) => Json::obj([("str", Json::str(s.clone()))]),
        Value::Bool(b) => Json::obj([("bool", Json::Bool(*b))]),
        Value::Timestamp(t) => Json::obj([("ts", Json::Int(*t))]),
        Value::Double(d) => Json::obj([("f", Json::Float(*d))]),
    }
}

/// Decode one tagged object back to a [`Value`].
pub fn value_from_json(j: &Json) -> Result<Value, ProtoError> {
    let malformed = || ProtoError::Malformed(format!("bad value: {}", j));
    match j {
        Json::Null => Ok(Value::Null),
        Json::Obj(m) => {
            // exactly one tag field; `{}` and multi-key objects are
            // malformed values, not panics (a hostile line must never kill
            // the connection handler)
            let mut fields = m.iter();
            let (Some((tag, inner)), None) = (fields.next(), fields.next()) else {
                return Err(malformed());
            };
            match (tag.as_str(), inner) {
                ("int", Json::Int(i)) => i32::try_from(*i).map(Value::Int).map_err(|_| malformed()),
                ("big", Json::Int(i)) => Ok(Value::BigInt(*i)),
                ("str", Json::Str(s)) => Ok(Value::Varchar(s.clone())),
                ("bool", Json::Bool(b)) => Ok(Value::Bool(*b)),
                ("ts", Json::Int(t)) => Ok(Value::Timestamp(*t)),
                // JSON has no Inf/NaN: the encoder writes {"f":null} for
                // non-finite doubles, which decodes to NaN (lossy but
                // round-trippable rather than a page-breaking error)
                ("f", Json::Null) => Ok(Value::Double(f64::NAN)),
                ("f", j) => j.as_f64().map(Value::Double).ok_or_else(malformed),
                _ => Err(malformed()),
            }
        }
        _ => Err(malformed()),
    }
}

pub fn row_to_json(row: &[Value]) -> Json {
    Json::Arr(row.iter().map(value_to_json).collect())
}

/// Parameters: a scalar travels as a tagged value, a collection (bound to
/// `IN [p MAX n]`) as an array of tagged values.
pub fn param_to_json(p: &ParamValue) -> Json {
    match p {
        ParamValue::Scalar(v) => value_to_json(v),
        ParamValue::Collection(vs) => Json::Arr(vs.iter().map(value_to_json).collect()),
    }
}

pub fn param_from_json(j: &Json) -> Result<ParamValue, ProtoError> {
    match j {
        Json::Arr(items) => Ok(ParamValue::Collection(
            items
                .iter()
                .map(value_from_json)
                .collect::<Result<_, _>>()?,
        )),
        other => value_from_json(other).map(ParamValue::Scalar),
    }
}

fn params_from_json(j: Option<&Json>) -> Result<Vec<ParamValue>, ProtoError> {
    match j {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items.iter().map(param_from_json).collect(),
        Some(other) => Err(ProtoError::Malformed(format!(
            "params must be an array, got {}",
            other
        ))),
    }
}

fn cursor_from_json(j: Option<&Json>) -> Result<Option<Cursor>, ProtoError> {
    match j {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(hex)) => {
            let bytes =
                hex_decode(hex).ok_or_else(|| ProtoError::Malformed("cursor is not hex".into()))?;
            Cursor::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| ProtoError::Malformed(e.to_string()))
        }
        Some(other) => Err(ProtoError::Malformed(format!(
            "cursor must be a hex string, got {}",
            other
        ))),
    }
}

pub fn cursor_to_json(cursor: &Option<Cursor>) -> Json {
    match cursor {
        Some(c) => Json::str(hex_encode(&c.to_bytes())),
        None => Json::Null,
    }
}

pub fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Parse one request line, id included.
pub fn parse_envelope(line: &str) -> Result<Envelope, ProtoError> {
    let j = crate::json::parse(line.trim())?;
    let id = match j.get("id") {
        None | Some(Json::Null) => None,
        Some(other) => Some(RequestId::from_json(other)?),
    };
    Ok(Envelope {
        id,
        request: request_from_json(&j, false)?,
    })
}

/// Parse one request line, ignoring any `id` field (kept for codec tests
/// and embedders that do their own correlation).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    parse_envelope(line).map(|e| e.request)
}

/// Best-effort `id` recovery from a line that failed [`parse_envelope`]:
/// if the line is valid JSON carrying a valid `id`, the error response
/// can still echo it so a pipelining client can correlate the failure.
pub fn extract_id(line: &str) -> Option<RequestId> {
    let j = crate::json::parse(line.trim()).ok()?;
    RequestId::from_json(j.get("id")?).ok()
}

/// Decode one request object. `nested` is true inside a `batch`, where
/// further batches (and per-sub-request ids) are malformed.
fn request_from_json(j: &Json, nested: bool) -> Result<Request, ProtoError> {
    let cmd = j
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::Malformed("missing 'cmd'".into()))?;
    let name = |j: &Json| -> Result<String, ProtoError> {
        j.get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ProtoError::Malformed("missing 'name'".into()))
    };
    match cmd {
        "prepare" => Ok(Request::Prepare {
            name: name(j)?,
            sql: j
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::Malformed("missing 'sql'".into()))?
                .to_string(),
        }),
        "execute" => Ok(Request::Execute {
            name: name(j)?,
            params: params_from_json(j.get("params"))?,
            cursor: cursor_from_json(j.get("cursor"))?,
        }),
        "cursor-next" => {
            let cursor = cursor_from_json(j.get("cursor"))?
                .ok_or_else(|| ProtoError::Malformed("cursor-next requires a 'cursor'".into()))?;
            Ok(Request::CursorNext {
                name: name(j)?,
                params: params_from_json(j.get("params"))?,
                cursor,
            })
        }
        "dml" => Ok(Request::Dml {
            sql: j
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::Malformed("missing 'sql'".into()))?
                .to_string(),
            params: params_from_json(j.get("params"))?,
        }),
        "stats" => Ok(Request::Stats),
        "revalidate" => Ok(Request::Revalidate),
        "rebalance" => Ok(Request::Rebalance),
        "snapshot" => Ok(Request::Snapshot),
        "explain" => {
            let field = |key: &str| -> Result<Option<String>, ProtoError> {
                match j.get(key) {
                    None | Some(Json::Null) => Ok(None),
                    Some(Json::Str(s)) => Ok(Some(s.clone())),
                    Some(other) => Err(ProtoError::Malformed(format!(
                        "'{key}' must be a string, got {other}"
                    ))),
                }
            };
            let name = field("name")?;
            let sql = field("sql")?;
            if name.is_some() == sql.is_some() {
                return Err(ProtoError::Malformed(
                    "explain requires exactly one of 'name' or 'sql'".into(),
                ));
            }
            Ok(Request::Explain { name, sql })
        }
        "batch" => {
            if nested {
                return Err(ProtoError::Malformed("batch cannot contain a batch".into()));
            }
            let items = j
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::Malformed("batch requires a 'requests' array".into()))?;
            let requests = items
                .iter()
                .map(|sub| {
                    // mirror the envelope rule: `"id":null` means absent
                    if sub.get("id").is_some_and(|j| *j != Json::Null) {
                        return Err(ProtoError::Malformed(
                            "batch sub-requests are positional and must not carry 'id'".into(),
                        ));
                    }
                    request_from_json(sub, true)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Batch { requests })
        }
        other => Err(ProtoError::Malformed(format!("unknown cmd '{other}'"))),
    }
}

/// Serialize a request as its wire object (no id).
pub fn request_to_json(req: &Request) -> Json {
    match req {
        Request::Prepare { name, sql } => Json::obj([
            ("cmd", Json::str("prepare")),
            ("name", Json::str(name.clone())),
            ("sql", Json::str(sql.clone())),
        ]),
        Request::Execute {
            name,
            params,
            cursor,
        } => Json::obj([
            ("cmd", Json::str("execute")),
            ("name", Json::str(name.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
            ("cursor", cursor_to_json(cursor)),
        ]),
        Request::CursorNext {
            name,
            params,
            cursor,
        } => Json::obj([
            ("cmd", Json::str("cursor-next")),
            ("name", Json::str(name.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
            ("cursor", cursor_to_json(&Some(cursor.clone()))),
        ]),
        Request::Dml { sql, params } => Json::obj([
            ("cmd", Json::str("dml")),
            ("sql", Json::str(sql.clone())),
            (
                "params",
                Json::Arr(params.iter().map(param_to_json).collect()),
            ),
        ]),
        Request::Stats => Json::obj([("cmd", Json::str("stats"))]),
        Request::Revalidate => Json::obj([("cmd", Json::str("revalidate"))]),
        Request::Rebalance => Json::obj([("cmd", Json::str("rebalance"))]),
        Request::Snapshot => Json::obj([("cmd", Json::str("snapshot"))]),
        Request::Explain { name, sql } => {
            let mut fields = vec![("cmd", Json::str("explain"))];
            if let Some(n) = name {
                fields.push(("name", Json::str(n.clone())));
            }
            if let Some(q) = sql {
                fields.push(("sql", Json::str(q.clone())));
            }
            Json::obj(fields)
        }
        Request::Batch { requests } => Json::obj([
            ("cmd", Json::str("batch")),
            (
                "requests",
                Json::Arr(requests.iter().map(request_to_json).collect()),
            ),
        ]),
    }
}

/// Serialize a request (what id-less clients send).
pub fn request_to_line(req: &Request) -> String {
    request_to_json(req).to_string()
}

/// Serialize a request with its optional id (what pipelining clients send).
pub fn envelope_to_line(env: &Envelope) -> String {
    let mut j = request_to_json(&env.request);
    if let (Json::Obj(m), Some(id)) = (&mut j, &env.id) {
        m.insert("id".into(), id.to_json());
    }
    j.to_string()
}

/// Echo `id` onto a response envelope (a no-op on non-objects, which the
/// server never produces).
pub fn attach_id(response: &mut Json, id: &RequestId) {
    if let Json::Obj(m) = response {
        m.insert("id".into(), id.to_json());
    }
}

/// Build a success response envelope.
pub fn ok_response(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut m: std::collections::BTreeMap<String, Json> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    m.insert("ok".into(), Json::Bool(true));
    Json::Obj(m)
}

/// Build an error response envelope.
pub fn err_response(message: impl Into<String>) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str(message.into())),
    ])
}

/// The admission-budget rejection envelope (PROTOCOL.md §4.2): a normal
/// error plus a machine-readable `code` and the refusing tenant, so a
/// client can back off instead of string-matching the message.
pub fn budget_exceeded_response(tenant: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::str(format!("admission budget exceeded for tenant '{tenant}'")),
        ),
        ("code", Json::str("budget-exceeded")),
        ("tenant", Json::str(tenant.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_engine::CursorState;

    #[test]
    fn value_tagging_roundtrips() {
        let values = [
            Value::Null,
            Value::Int(-5),
            Value::BigInt(9_007_199_254_740_993),
            Value::Varchar("héllo\nworld".into()),
            Value::Bool(true),
            Value::Timestamp(1_300_000_000_000_123),
            Value::Double(0.1),
        ];
        for v in &values {
            let j = value_to_json(v);
            let reparsed = crate::json::parse(&j.to_string()).unwrap();
            assert_eq!(&value_from_json(&reparsed).unwrap(), v);
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Prepare {
                name: "q1".into(),
                sql: "SELECT * FROM t WHERE k = <k>".into(),
            },
            Request::Execute {
                name: "q1".into(),
                params: vec![Value::Int(3).into(), Value::Varchar("x".into()).into()],
                cursor: None,
            },
            Request::CursorNext {
                name: "q1".into(),
                params: vec![],
                cursor: Cursor {
                    state: CursorState::ScanAfter {
                        last_key: vec![1, 2, 255],
                    },
                },
            },
            Request::Dml {
                sql: "INSERT INTO t VALUES (<a>)".into(),
                params: vec![
                    Value::Int(1).into(),
                    vec![Value::Int(2), Value::Int(3)].into(),
                ],
            },
            Request::Stats,
            Request::Revalidate,
            Request::Rebalance,
            Request::Snapshot,
            Request::Explain {
                name: Some("q1".into()),
                sql: None,
            },
            Request::Explain {
                name: None,
                sql: Some("SELECT * FROM t WHERE k = <k> LIMIT 5".into()),
            },
            Request::Batch {
                requests: vec![
                    Request::Dml {
                        sql: "INSERT INTO t VALUES (<a>)".into(),
                        params: vec![Value::Int(9).into()],
                    },
                    Request::Execute {
                        name: "q1".into(),
                        params: vec![],
                        cursor: None,
                    },
                    Request::Stats,
                ],
            },
        ];
        for r in &reqs {
            assert_eq!(&parse_request(&request_to_line(r)).unwrap(), r);
            // and with each id flavor wrapped around it
            for id in [
                None,
                Some(RequestId::Int(-7)),
                Some(RequestId::Str("page-3\n\"x\"".into())),
            ] {
                let env = Envelope {
                    id,
                    request: r.clone(),
                };
                assert_eq!(parse_envelope(&envelope_to_line(&env)).unwrap(), env);
            }
        }
    }

    #[test]
    fn id_rules() {
        // null id == absent id (legacy)
        let env = parse_envelope(r#"{"cmd":"stats","id":null}"#).unwrap();
        assert_eq!(env.id, None);
        // float / bool / structured ids are malformed
        for bad in [
            r#"{"cmd":"stats","id":1.5}"#,
            r#"{"cmd":"stats","id":true}"#,
            r#"{"cmd":"stats","id":[1]}"#,
        ] {
            assert!(matches!(parse_envelope(bad), Err(ProtoError::Malformed(_))));
        }
        // best-effort id recovery from otherwise-malformed lines
        assert_eq!(
            extract_id(r#"{"cmd":"nope","id":3}"#),
            Some(RequestId::Int(3))
        );
        assert_eq!(extract_id(r#"{"cmd":"nope"}"#), None);
        assert_eq!(extract_id("not json"), None);
        // echo helper sticks the id into the envelope
        let mut resp = ok_response([]);
        attach_id(&mut resp, &RequestId::Str("a".into()));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn explain_requires_exactly_one_target() {
        // neither, both, and non-string targets are malformed
        for bad in [
            r#"{"cmd":"explain"}"#,
            r#"{"cmd":"explain","name":"q","sql":"SELECT 1"}"#,
            r#"{"cmd":"explain","name":7}"#,
            r#"{"cmd":"explain","sql":[1]}"#,
        ] {
            assert!(
                matches!(parse_request(bad), Err(ProtoError::Malformed(_))),
                "{bad}"
            );
        }
        // `null` means absent, mirroring the id rule
        assert_eq!(
            parse_request(r#"{"cmd":"explain","name":"q","sql":null}"#).unwrap(),
            Request::Explain {
                name: Some("q".into()),
                sql: None,
            }
        );
    }

    #[test]
    fn batch_structural_rules() {
        // nesting is malformed
        assert!(matches!(
            parse_request(r#"{"cmd":"batch","requests":[{"cmd":"batch","requests":[]}]}"#),
            Err(ProtoError::Malformed(_))
        ));
        // sub-requests must not carry ids
        assert!(matches!(
            parse_request(r#"{"cmd":"batch","requests":[{"cmd":"stats","id":1}]}"#),
            Err(ProtoError::Malformed(_))
        ));
        // 'requests' must be present and an array
        for bad in [
            r#"{"cmd":"batch"}"#,
            r#"{"cmd":"batch","requests":{"cmd":"stats"}}"#,
        ] {
            assert!(matches!(parse_request(bad), Err(ProtoError::Malformed(_))));
        }
        // the empty batch is legal (answers with empty results)
        assert_eq!(
            parse_request(r#"{"cmd":"batch","requests":[]}"#).unwrap(),
            Request::Batch { requests: vec![] }
        );
        // `"id":null` on a sub-request means absent, like the envelope rule
        assert_eq!(
            parse_request(r#"{"cmd":"batch","requests":[{"cmd":"stats","id":null}]}"#).unwrap(),
            Request::Batch {
                requests: vec![Request::Stats]
            }
        );
    }

    #[test]
    fn empty_and_multikey_objects_are_errors_not_panics() {
        // `{}` as a request line must produce a protocol error; pins the
        // unwrap-free field handling so no refactor can make a hostile
        // line panic the connection handler
        assert!(matches!(parse_request("{}"), Err(ProtoError::Malformed(_))));
        // `{}` and multi-tag objects as *values* are malformed too
        for line in [
            r#"{"cmd":"execute","name":"q","params":[{}]}"#,
            r#"{"cmd":"execute","name":"q","params":[{"int":1,"str":"x"}]}"#,
            r#"{"cmd":"execute","name":"q","params":[{"nope":1}]}"#,
        ] {
            assert!(
                matches!(parse_request(line), Err(ProtoError::Malformed(_))),
                "{line}"
            );
        }
        // truncated escapes surface as JSON errors, not panics
        for line in ["{\"cmd\":\"stats\"", r#"{"cmd":"stats","x":"\u12"#, "\"\\"] {
            assert!(
                matches!(parse_request(line), Err(ProtoError::Json(_))),
                "{line}"
            );
        }
    }

    #[test]
    fn hex_roundtrip_and_rejects() {
        assert_eq!(
            hex_decode(&hex_encode(&[0, 127, 255])).unwrap(),
            vec![0, 127, 255]
        );
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("not json").is_err());
    }
}
