//! The codec abstraction the serving stack is generic over.
//!
//! PROTOCOL.md defines two encodings of the same request/response model:
//! newline-delimited JSON (v2, the compatibility default) and
//! length-prefixed binary frames (v3, negotiated by a magic preamble —
//! see [`crate::binary`]). [`Wire`] is the seam between them: the server's
//! reader/writer lanes, the [`Client`](crate::Client), and the
//! [`Pipeline`](crate::Pipeline) all speak *frames* through this trait and
//! never mention bytes-on-the-wire directly, so both encodings share one
//! request router and one response builder.
//!
//! A *frame* is one protocol message with its transport framing stripped:
//! for JSON the line's bytes without the trailing newline, for binary the
//! bytes after the length prefix (opcode + id + payload). Encoders append
//! complete framed messages (newline / length prefix included) so a writer
//! can batch many responses into one buffer and flush once.

use crate::json::Json;
use crate::protocol::{
    attach_id, envelope_to_line, extract_id, parse_envelope, Envelope, ProtoError, RequestId,
};
use std::io::{self, BufRead};

/// One wire encoding of the protocol. Implementations are stateless (any
/// per-connection scratch lives in the caller), so a single instance can
/// serve every connection of a server.
pub trait Wire: Send + Sync {
    /// Protocol version this codec speaks (2 = JSON lines, 3 = binary).
    fn version(&self) -> u8;

    /// Append one framed request (id included) to `out`.
    fn encode_envelope(&self, env: &Envelope, out: &mut Vec<u8>);

    /// Append one framed response carrying `id` to `out`. The `response`
    /// body must not already carry an `id` field; correlation is the
    /// codec's job (JSON attaches it in-body, binary carries it in the
    /// frame header).
    fn encode_response(&self, id: Option<&RequestId>, response: &Json, out: &mut Vec<u8>);

    /// Read the next frame into `buf` (cleared first; its capacity is
    /// reused across calls — the read path of a warm connection performs
    /// no allocation). Returns `Ok(false)` on clean end-of-stream at a
    /// frame boundary; EOF mid-frame and oversized frames are
    /// [`io::Error`]s (the connection is unrecoverable — unlike a decode
    /// error within an intact frame, which leaves the stream in sync).
    fn read_frame(&self, reader: &mut dyn BufRead, buf: &mut Vec<u8>) -> io::Result<bool>;

    /// Decode a frame produced by [`Wire::encode_envelope`].
    fn decode_envelope(&self, frame: &[u8]) -> Result<Envelope, ProtoError>;

    /// Decode a frame produced by [`Wire::encode_response`].
    fn decode_response(&self, frame: &[u8]) -> Result<(Option<RequestId>, Json), ProtoError>;

    /// Best-effort id recovery from a frame that failed
    /// [`Wire::decode_envelope`], so the error response can still echo it
    /// and a pipelining client can correlate the failure (PROTOCOL.md §7).
    fn extract_id(&self, frame: &[u8]) -> Option<RequestId>;
}

/// The newline-delimited JSON encoding (protocol v2) as a [`Wire`].
/// Delegates to [`crate::protocol`], whose byte output is pinned by the
/// differential tests — framing through this type changes nothing on the
/// wire.
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonWire;

impl Wire for JsonWire {
    fn version(&self) -> u8 {
        2
    }

    fn encode_envelope(&self, env: &Envelope, out: &mut Vec<u8>) {
        out.extend_from_slice(envelope_to_line(env).as_bytes());
        out.push(b'\n');
    }

    fn encode_response(&self, id: Option<&RequestId>, response: &Json, out: &mut Vec<u8>) {
        match id {
            Some(id) => {
                let mut tagged = response.clone();
                attach_id(&mut tagged, id);
                out.extend_from_slice(tagged.to_string().as_bytes());
            }
            None => out.extend_from_slice(response.to_string().as_bytes()),
        }
        out.push(b'\n');
    }

    fn read_frame(&self, reader: &mut dyn BufRead, buf: &mut Vec<u8>) -> io::Result<bool> {
        loop {
            buf.clear();
            let n = reader.read_until(b'\n', buf)?;
            if n == 0 {
                return Ok(false);
            }
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            // blank lines are keep-alive noise, not frames
            if buf.iter().any(|b| !b.is_ascii_whitespace()) {
                return Ok(true);
            }
        }
    }

    fn decode_envelope(&self, frame: &[u8]) -> Result<Envelope, ProtoError> {
        let line = std::str::from_utf8(frame)
            .map_err(|_| ProtoError::Malformed("request is not valid UTF-8".into()))?;
        parse_envelope(line)
    }

    fn decode_response(&self, frame: &[u8]) -> Result<(Option<RequestId>, Json), ProtoError> {
        let line = std::str::from_utf8(frame)
            .map_err(|_| ProtoError::Malformed("response is not valid UTF-8".into()))?;
        let j = crate::json::parse(line.trim())?;
        let id = match j.get("id") {
            None | Some(Json::Null) => None,
            Some(other) => Some(RequestId::from_json(other)?),
        };
        Ok((id, j))
    }

    fn extract_id(&self, frame: &[u8]) -> Option<RequestId> {
        extract_id(std::str::from_utf8(frame).ok()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;
    use std::io::BufReader;

    #[test]
    fn json_wire_frames_match_line_protocol() {
        let wire = JsonWire;
        let env = Envelope {
            id: Some(RequestId::Int(7)),
            request: Request::Stats,
        };
        let mut out = Vec::new();
        wire.encode_envelope(&env, &mut out);
        assert_eq!(out, format!("{}\n", envelope_to_line(&env)).into_bytes());

        let mut reader = BufReader::new(&out[..]);
        let mut frame = Vec::new();
        assert!(wire.read_frame(&mut reader, &mut frame).unwrap());
        assert_eq!(wire.decode_envelope(&frame).unwrap(), env);
        assert!(!wire.read_frame(&mut reader, &mut frame).unwrap());
    }

    #[test]
    fn json_wire_skips_blank_lines_and_attaches_ids() {
        let wire = JsonWire;
        let bytes = b"\n  \r\n{\"cmd\":\"stats\",\"id\":3}\n";
        let mut reader = BufReader::new(&bytes[..]);
        let mut frame = Vec::new();
        assert!(wire.read_frame(&mut reader, &mut frame).unwrap());
        let env = wire.decode_envelope(&frame).unwrap();
        assert_eq!(env.id, Some(RequestId::Int(3)));

        let mut out = Vec::new();
        wire.encode_response(
            Some(&RequestId::Int(3)),
            &crate::protocol::ok_response([]),
            &mut out,
        );
        let (id, j) = wire.decode_response(&out[..out.len() - 1]).unwrap();
        assert_eq!(id, Some(RequestId::Int(3)));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn json_extract_id_recovers_from_garbage_requests() {
        let wire = JsonWire;
        assert_eq!(
            wire.extract_id(b"{\"cmd\":\"nope\",\"id\":\"x\"}"),
            Some(RequestId::Str("x".into()))
        );
        assert_eq!(wire.extract_id(b"not json"), None);
        assert_eq!(wire.extract_id(&[0xFF, 0xFE]), None);
    }
}
