//! The prepared-statement registry with SLO admission control.
//!
//! This is the paper's success-tolerance enforced at the API boundary
//! (§6, §10): a statement is compiled **once**, at registration, and the
//! compile-time p99 prediction decides its fate *before any storage
//! request is issued*:
//!
//! * queries the optimizer cannot bound are **rejected as unbounded**
//!   (the Performance Insight report travels back to the client),
//! * bounded queries whose predicted p99 violates the service SLO are
//!   either **rejected** or — when the service allows degradation — are
//!   **admitted with a reduced LIMIT/PAGINATE** chosen by the §6.4 advisor
//!   (the largest result size whose prediction still meets the SLO),
//! * everything else is **admitted** verbatim.
//!
//! Admission works on a *pure* compile against a catalog snapshot: no
//! namespace creation, no index backfill, no KV round. Only an admitted
//! statement is fully prepared (which may provision plan-derived indexes)
//! and stored. The tests assert the zero-storage-ops property directly.

use parking_lot::{Mutex, RwLock};
use piql_core::ast::{RowBound, SelectStmt};
use piql_core::opt::{OptError, Optimizer};
use piql_engine::{Cursor, Database, DbError, ExecStrategy, Prepared, QueryResult};
use piql_kv::{KvStore, LiveCluster, Session};
use piql_predict::{Heatmap, SloPredictor, ALPHA_GRID};
use piql_workloads::RunMetrics;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The service-level objective statements are admitted against.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// p99 response-time target, milliseconds.
    pub slo_ms: f64,
    /// Fraction of model intervals whose predicted p99 must meet the SLO
    /// (§6.3: 1.0 = every interval, 0.9 = tolerate 10% volatile intervals).
    pub interval_confidence: f64,
    /// Degrade over-SLO statements to a smaller LIMIT instead of rejecting.
    pub allow_degrade: bool,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            slo_ms: 100.0,
            interval_confidence: 0.9,
            allow_degrade: true,
        }
    }
}

/// The registration verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Within SLO as written.
    Admitted { predicted_p99_ms: f64 },
    /// Over SLO as written; admitted with the advisor's reduced bound.
    Degraded {
        predicted_p99_ms: f64,
        original_limit: u64,
        limit: u64,
    },
    /// Bounded, but no feasible bound meets the SLO.
    RejectedSlo { predicted_p99_ms: f64 },
    /// The optimizer found no scale-independent plan; `report` is the
    /// Performance Insight Assistant's diagnosis.
    RejectedUnbounded { report: String },
}

impl Admission {
    pub fn is_admitted(&self) -> bool {
        matches!(
            self,
            Admission::Admitted { .. } | Admission::Degraded { .. }
        )
    }

    pub fn verdict(&self) -> &'static str {
        match self {
            Admission::Admitted { .. } => "admitted",
            Admission::Degraded { .. } => "degraded",
            Admission::RejectedSlo { .. } => "rejected-slo",
            Admission::RejectedUnbounded { .. } => "rejected-unbounded",
        }
    }
}

/// One admitted statement with its runtime accounting.
pub struct RegisteredStatement {
    pub name: String,
    pub sql: String,
    pub prepared: Prepared,
    pub admission: Admission,
    pub executions: AtomicU64,
    /// Wall-clock latency samples (reuses the experiment metrics type, so
    /// the stats endpoint reports the same quantiles the benchmarks do).
    pub metrics: Mutex<RunMetrics>,
}

impl RegisteredStatement {
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.metrics.lock().quantile_ms(q)
    }
}

/// Service counters.
#[derive(Debug, Default)]
pub struct RegistryCounters {
    pub admitted: AtomicU64,
    pub degraded: AtomicU64,
    pub rejected_slo: AtomicU64,
    pub rejected_unbounded: AtomicU64,
    pub executed: AtomicU64,
    pub exec_errors: AtomicU64,
}

/// Errors surfaced to protocol clients.
#[derive(Debug)]
pub enum RegistryError {
    UnknownStatement(String),
    Db(DbError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownStatement(name) => {
                write!(f, "unknown statement '{name}' (prepare it first)")
            }
            RegistryError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<DbError> for RegistryError {
    fn from(e: DbError) -> Self {
        RegistryError::Db(e)
    }
}

/// The registry. Generic over the backend so the same service logic runs
/// on the wall-clock [`LiveCluster`] (the default) and, in harnesses, the
/// virtual-time simulator.
pub struct StatementRegistry<S: KvStore = LiveCluster> {
    db: Arc<Database<S>>,
    predictor: SloPredictor,
    slo: SloConfig,
    optimizer: Optimizer,
    statements: RwLock<BTreeMap<String, Arc<RegisteredStatement>>>,
    pub counters: RegistryCounters,
}

impl<S: KvStore> StatementRegistry<S> {
    pub fn new(db: Arc<Database<S>>, predictor: SloPredictor, slo: SloConfig) -> Self {
        StatementRegistry {
            db,
            predictor,
            slo,
            optimizer: Optimizer::scale_independent(),
            statements: RwLock::new(BTreeMap::new()),
            counters: RegistryCounters::default(),
        }
    }

    pub fn db(&self) -> &Arc<Database<S>> {
        &self.db
    }

    pub fn slo(&self) -> &SloConfig {
        &self.slo
    }

    /// Register `sql` under `name`. Returns the admission verdict; only
    /// admitted/degraded statements become executable. Re-registering a
    /// name replaces it — a rejected re-registration *unregisters* the
    /// name, so a client can never execute different SQL than it last
    /// prepared.
    pub fn register(&self, name: &str, sql: &str) -> Result<Admission, RegistryError> {
        let stmt = piql_core::parser::parse_select(sql)
            .map_err(|e| RegistryError::Db(DbError::Parse(e)))?;
        let catalog = self.db.catalog();

        // Phase 1 — pure compile: no namespaces, no backfill, no KV rounds.
        let compiled = match self.optimizer.compile(&catalog, &stmt) {
            Ok(c) => c,
            Err(OptError::NotScaleIndependent(report)) => {
                self.counters
                    .rejected_unbounded
                    .fetch_add(1, Ordering::Relaxed);
                self.uninstall(name);
                return Ok(Admission::RejectedUnbounded {
                    report: report.to_string(),
                });
            }
            Err(e) => return Err(RegistryError::Db(DbError::Compile(e))),
        };

        // Phase 2 — SLO prediction (§6.2/6.3) on the compiled plan.
        let prediction = self.predictor.predict(&compiled);
        let p99 = prediction.max_p99_ms;
        if prediction.meets_slo(self.slo.slo_ms, self.slo.interval_confidence) {
            let prepared = self.db.prepare_stmt(&stmt)?;
            self.install(
                name,
                sql,
                prepared,
                Admission::Admitted {
                    predicted_p99_ms: p99,
                },
            );
            self.counters.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Admission::Admitted {
                predicted_p99_ms: p99,
            });
        }

        // Phase 3 — advisor-guided degradation (§6.4): find the largest
        // LIMIT/PAGINATE whose prediction still meets the SLO.
        if self.slo.allow_degrade {
            if let Some(bound) = stmt.bound {
                if let Some(limit) = self.suggest_degraded_limit(&catalog, &stmt, bound.count()) {
                    let mut degraded = stmt.clone();
                    degraded.bound = Some(match bound {
                        RowBound::Limit(_) => RowBound::Limit(limit),
                        RowBound::Paginate(_) => RowBound::Paginate(limit),
                    });
                    let prepared = self.db.prepare_stmt(&degraded)?;
                    let admission = Admission::Degraded {
                        predicted_p99_ms: self.predictor.predict(&prepared.compiled).max_p99_ms,
                        original_limit: bound.count(),
                        limit,
                    };
                    self.install(name, sql, prepared, admission.clone());
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    return Ok(admission);
                }
            }
        }

        self.counters.rejected_slo.fetch_add(1, Ordering::Relaxed);
        self.uninstall(name);
        Ok(Admission::RejectedSlo {
            predicted_p99_ms: p99,
        })
    }

    /// Probe smaller bounds with the §6.4 heatmap advisor. Pure compiles
    /// only — still zero storage operations.
    fn suggest_degraded_limit(
        &self,
        catalog: &piql_core::catalog::Catalog,
        stmt: &SelectStmt,
        original: u64,
    ) -> Option<u64> {
        let mut candidates: Vec<u64> = ALPHA_GRID
            .iter()
            .map(|&a| a as u64)
            .filter(|&a| a < original)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return None;
        }
        let heatmap = Heatmap::build(
            &self.predictor,
            "result limit",
            "-",
            candidates,
            vec![0],
            |limit, _| {
                let mut probe = stmt.clone();
                probe.bound = Some(match stmt.bound {
                    Some(RowBound::Paginate(_)) => RowBound::Paginate(limit),
                    _ => RowBound::Limit(limit),
                });
                self.optimizer
                    .compile(catalog, &probe)
                    .expect("smaller bound of a bounded query must compile")
            },
        );
        heatmap.suggest_row_limit(0, self.slo.slo_ms)
    }

    fn uninstall(&self, name: &str) {
        self.statements.write().remove(name);
    }

    fn install(&self, name: &str, sql: &str, prepared: Prepared, admission: Admission) {
        let statement = Arc::new(RegisteredStatement {
            name: name.to_string(),
            sql: sql.to_string(),
            prepared,
            admission,
            executions: AtomicU64::new(0),
            metrics: Mutex::new(RunMetrics {
                warmup_us: 0,
                horizon_us: u64::MAX,
                ..Default::default()
            }),
        });
        self.statements.write().insert(name.to_string(), statement);
    }

    pub fn get(&self, name: &str) -> Option<Arc<RegisteredStatement>> {
        self.statements.read().get(name).cloned()
    }

    pub fn list(&self) -> Vec<Arc<RegisteredStatement>> {
        self.statements.read().values().cloned().collect()
    }

    /// Execute a registered statement, recording wall-clock latency.
    pub fn execute(
        &self,
        session: &mut Session,
        name: &str,
        params: &piql_core::plan::params::Params,
        cursor: Option<&Cursor>,
    ) -> Result<QueryResult, RegistryError> {
        let statement = self
            .get(name)
            .ok_or_else(|| RegistryError::UnknownStatement(name.to_string()))?;
        // start timing from *now*, not from the previous round's completion
        // — otherwise client think-time (and, on a fresh session, the whole
        // backend uptime) would pollute the latency quantiles
        self.db.store().sync_session(session);
        let start = session.begin();
        let result = self.db.execute_with(
            session,
            &statement.prepared,
            params,
            ExecStrategy::Parallel,
            cursor,
        );
        match result {
            Ok(r) => {
                let latency = session.elapsed_since(start);
                statement.executions.fetch_add(1, Ordering::Relaxed);
                statement.metrics.lock().record(start, latency, 0);
                self.counters.executed.fetch_add(1, Ordering::Relaxed);
                Ok(r)
            }
            Err(e) => {
                self.counters.exec_errors.fetch_add(1, Ordering::Relaxed);
                Err(RegistryError::Db(e))
            }
        }
    }

    /// Execute a DML statement (writes are always single-record bounded
    /// operations, so they need no admission decision).
    pub fn execute_dml(
        &self,
        session: &mut Session,
        sql: &str,
        params: &piql_core::plan::params::Params,
    ) -> Result<(), RegistryError> {
        self.db
            .execute_dml(session, sql, params)
            .map_err(RegistryError::Db)
    }
}
