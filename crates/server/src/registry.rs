//! The prepared-statement registry with SLO admission control.
//!
//! This is the paper's success-tolerance enforced at the API boundary
//! (§6, §10): a statement is compiled at registration, and the
//! compile-time p99 prediction decides its fate *before any storage
//! request is issued*:
//!
//! * queries the optimizer cannot bound are **rejected as unbounded**
//!   (the Performance Insight report travels back to the client),
//! * bounded queries whose predicted p99 violates the service SLO are
//!   either **rejected** or — when the service allows degradation — are
//!   **admitted with a reduced LIMIT/PAGINATE** chosen by the §6.4 advisor
//!   (the largest result size whose prediction still meets the SLO),
//! * everything else is **admitted** verbatim.
//!
//! Admission works on a *pure* compile against a catalog snapshot: no
//! namespace creation, no index backfill, no KV round. Only an admitted
//! statement is fully prepared (which may provision plan-derived indexes)
//! and stored. The tests assert the zero-storage-ops property directly.
//!
//! **The prediction loop stays closed after registration.** The backend
//! tags every executed round with its operator context and buffers the
//! observed latency (see `piql_kv::sample`); [`StatementRegistry::revalidate`]
//! — driven periodically by a [`Revalidator`] thread or on demand via the
//! protocol's `revalidate` verb — drains those samples into the shared
//! [`SharedModelStore`], then re-predicts every registered statement
//! against the refreshed models and updates its [`Admission`] in place:
//! statements that drifted over the SLO are **re-degraded** to a tighter
//! advisor-chosen bound or **flagged** (kept executable — yanking running
//! statements would turn drift into an outage — but marked, with the drift
//! history exposed over `stats`); statements whose store got faster are
//! relaxed back toward their original bound. Admission therefore tracks
//! the store the service actually runs on, interval by interval.

use crate::budget::{BudgetDecision, BudgetPolicy, TenantBudget};
use piql_analysis::ordered::{Mutex, RwLock};
use piql_analysis::rank;
use piql_core::ast::{RowBound, SelectStmt};
use piql_core::catalog::Catalog;
use piql_core::opt::{InsightReport, OptError, Optimizer};
use piql_core::plan::physical::{PhysicalPlan, ScanLimit};
use piql_core::plan::pred::Operand;
use piql_core::value::Value;
use piql_engine::{Cursor, Database, DbError, ExecStrategy, Prepared, QueryResult};
use piql_kv::{KvStore, LiveCluster, LiveOpKind, NsId, Session};
use piql_predict::{Heatmap, SharedModelStore, SloPredictor, ALPHA_GRID};
use piql_workloads::RunMetrics;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The service-level objective statements are admitted against.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// p99 response-time target, milliseconds.
    pub slo_ms: f64,
    /// Fraction of model intervals whose predicted p99 must meet the SLO
    /// (§6.3: 1.0 = every interval, 0.9 = tolerate 10% volatile intervals).
    pub interval_confidence: f64,
    /// Degrade over-SLO statements to a smaller LIMIT instead of rejecting.
    pub allow_degrade: bool,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            slo_ms: 100.0,
            interval_confidence: 0.9,
            allow_degrade: true,
        }
    }
}

/// The admission verdict (registration-time, and kept current by
/// re-validation sweeps afterwards).
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Within SLO as written.
    Admitted { predicted_p99_ms: f64 },
    /// Over SLO as written; admitted with the advisor's reduced bound.
    Degraded {
        predicted_p99_ms: f64,
        original_limit: u64,
        limit: u64,
    },
    /// Bounded, but no feasible bound meets the SLO.
    RejectedSlo { predicted_p99_ms: f64 },
    /// The optimizer found no scale-independent plan; `report` is the
    /// Performance Insight Assistant's structured diagnosis (problem,
    /// offending relation, concrete suggestions). Its `Display` is the
    /// legacy flat string older clients showed verbatim.
    RejectedUnbounded { report: InsightReport },
    /// Admitted earlier, but a re-validation sweep found the refreshed
    /// prediction over the SLO with no feasible tighter bound. The
    /// statement stays executable (revoking running statements would turn
    /// model drift into an outage); the flag — and the drift history — is
    /// the Performance Insight signal to act on. `diagnostics` is the
    /// static auditor's structured explanation of the violation (offending
    /// operator, dominating cost term, rewrite suggestions), refreshed by
    /// every sweep that keeps the statement flagged.
    Flagged {
        predicted_p99_ms: f64,
        diagnostics: Vec<piql_audit::Diagnostic>,
    },
}

impl Admission {
    pub fn is_admitted(&self) -> bool {
        matches!(
            self,
            Admission::Admitted { .. } | Admission::Degraded { .. } | Admission::Flagged { .. }
        )
    }

    pub fn verdict(&self) -> &'static str {
        match self {
            Admission::Admitted { .. } => "admitted",
            Admission::Degraded { .. } => "degraded",
            Admission::RejectedSlo { .. } => "rejected-slo",
            Admission::RejectedUnbounded { .. } => "rejected-unbounded",
            Admission::Flagged { .. } => "flagged",
        }
    }

    /// The prediction this verdict was made on (unbounded rejections have
    /// none).
    pub fn predicted_p99_ms(&self) -> Option<f64> {
        match self {
            Admission::Admitted { predicted_p99_ms }
            | Admission::Degraded {
                predicted_p99_ms, ..
            }
            | Admission::RejectedSlo { predicted_p99_ms }
            | Admission::Flagged {
                predicted_p99_ms, ..
            } => Some(*predicted_p99_ms),
            Admission::RejectedUnbounded { .. } => None,
        }
    }
}

/// What one re-validation sweep did to one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Refreshed prediction still supports the current verdict.
    Steady,
    /// Tightened to a smaller advisor-chosen bound.
    Redegraded,
    /// Models got faster: bound restored toward the original.
    Relaxed,
    /// Over SLO with no feasible tighter bound; statement marked.
    Flagged,
    /// A previously flagged statement meets the SLO again.
    Recovered,
}

impl DriftAction {
    pub fn name(self) -> &'static str {
        match self {
            DriftAction::Steady => "steady",
            DriftAction::Redegraded => "redegraded",
            DriftAction::Relaxed => "relaxed",
            DriftAction::Flagged => "flagged",
            DriftAction::Recovered => "recovered",
        }
    }
}

/// One entry of a statement's drift history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Which sweep produced it (monotonic, service-wide).
    pub sweep: u64,
    /// The refreshed prediction for the then-current plan, ms.
    pub predicted_p99_ms: f64,
    pub action: DriftAction,
}

/// Drift events retained per statement.
const DRIFT_HISTORY: usize = 32;

/// Registry-wide overload-control configuration. Per-tenant budgets created
/// after a change inherit these defaults; explicitly configured budgets
/// (see [`StatementRegistry::set_tenant_budget`]) are pinned and keep their
/// settings.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Default per-tenant in-flight execution cap (`None` = unlimited).
    pub default_tenant_capacity: Option<u32>,
    /// Default policy once a tenant's cap is reached.
    pub default_policy: BudgetPolicy,
    /// Auto-rebalance when any namespace's [`piql_kv::NsBalance::max_op_share`]
    /// exceeds this after a re-validation sweep. `0.0` disables the trigger.
    pub rebalance_max_op_share: f64,
    /// Minimum ops observed on a namespace since the last rebalance before
    /// skew is acted on (avoids rebalancing on statistical noise).
    pub rebalance_min_ops: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            default_tenant_capacity: None,
            default_policy: BudgetPolicy::Reject,
            rebalance_max_op_share: 0.0,
            rebalance_min_ops: 10_000,
        }
    }
}

/// The tenant a statement name belongs to: the prefix before the first
/// `'.'` (`"t0.point"` → `"t0"`), or `"default"` for unqualified names.
pub fn tenant_of(name: &str) -> &str {
    match name.split_once('.') {
        Some((tenant, _)) if !tenant.is_empty() => tenant,
        _ => "default",
    }
}

/// Recent latency samples retained per statement (ring; see
/// [`RunMetrics::bounded`]). Roughly: enough for stable p99s, bounded for
/// a server that executes forever.
const METRICS_CAPACITY: usize = 4_096;

/// One key component of a [`FastPointPlan`]'s probe key.
#[derive(Debug, Clone, PartialEq)]
pub enum FastKeyPart {
    /// Literal known at plan time.
    Const(Value),
    /// Taken from the execution's parameter at this index.
    Param(usize),
}

/// A pre-resolved single-key read: everything the server's allocation-free
/// point-read path needs, extracted once at install time so per-request
/// work is *only* "encode key, get, transcode row".
///
/// A statement qualifies when its physical plan is exactly one primary
/// `IndexScan` with a full-primary-key equality prefix, no range, no
/// reverse, no deref, a bounded limit, and no `PAGINATE` (so the cursor is
/// statically `None`). Full-pk keys are prefix-free under the order-
/// preserving key codec, so the plan's `GetRange [key, upper)` is
/// observably identical to an exact get — same rows, same accounting shape
/// (see `KvStore::point_get`).
#[derive(Debug, Clone, PartialEq)]
pub struct FastPointPlan {
    /// Primary namespace of the scanned table.
    pub ns: NsId,
    /// Key components in primary-key order (all `Dir::Asc` — primary
    /// indexes have no explicit directions).
    pub parts: Vec<FastKeyPart>,
    /// The plan's bounded entry count (α_c of the scan's op tag).
    pub alpha_c: u32,
    /// The plan's per-tuple byte bound (β of the scan's op tag).
    pub beta: u32,
    /// Full-row arity — stored rows that decode to a different arity fall
    /// back to the general path (which reports the shape error).
    pub arity: usize,
}

/// Extract the fast point-read plan from a freshly prepared statement, if
/// it qualifies. Resolves the namespace id eagerly (idempotent; the
/// general path creates the same namespace on first execution anyway).
fn fast_point_plan<S: KvStore>(
    db: &Database<S>,
    prepared: &Prepared,
) -> Option<Arc<FastPointPlan>> {
    let compiled = &prepared.compiled;
    if compiled.page_size.is_some() {
        return None;
    }
    // `SELECT *` compiles to an identity LocalProject over the scan; the
    // fast path emits the stored row verbatim, so peel the wrapper only
    // when it passes every scan column through in storage order (its
    // completeness against the full row is checked below).
    let mut physical = &compiled.physical;
    let mut projected = None;
    if let PhysicalPlan::LocalProject { child, columns, .. } = physical {
        if columns.iter().enumerate().all(|(i, (pos, _))| *pos == i) {
            projected = Some(columns.len());
            physical = child;
        }
    }
    let PhysicalPlan::IndexScan { spec, .. } = physical else {
        return None;
    };
    if spec.index.secondary.is_some() || spec.range.is_some() || spec.reverse || spec.deref {
        return None;
    }
    let ScanLimit::Bounded { count, .. } = &spec.limit else {
        return None;
    };
    if *count == 0 {
        return None;
    }
    let catalog = db.catalog();
    let table = catalog.table_by_id(spec.index.table);
    if spec.eq_prefix.len() != table.primary_key.len() {
        return None;
    }
    // a peeled projection must cover the whole row, not a prefix of it
    if projected.is_some_and(|n| n != table.columns.len()) {
        return None;
    }
    let parts = spec
        .eq_prefix
        .iter()
        .map(|op| match op {
            Operand::Literal(v) => FastKeyPart::Const(v.clone()),
            Operand::Param(p) => FastKeyPart::Param(p.index),
        })
        .collect();
    let ns = db.store().namespace(&Catalog::table_namespace(table));
    Some(Arc::new(FastPointPlan {
        ns,
        parts,
        alpha_c: (*count).min(u32::MAX as u64) as u32,
        beta: spec.row_bytes.min(u32::MAX as u64) as u32,
        arity: table.columns.len(),
    }))
}

/// The mutable half of a registered statement, swapped under one lock so
/// executors always see a (plan, admission) pair that belongs together.
#[derive(Debug)]
struct StatementState {
    prepared: Arc<Prepared>,
    /// Pre-resolved point-read plan when `prepared` qualifies (kept in
    /// lockstep with every plan swap).
    fast_point: Option<Arc<FastPointPlan>>,
    admission: Admission,
    /// Row bound the current plan enforces (`None`: no bound to degrade).
    limit: Option<u64>,
    /// Pre-compiled shed plan (tightest advisor bound) served when the
    /// tenant's budget admits under the `Shed` policy. Kept in lockstep
    /// with plan swaps; `None` when the statement has no tighter bound.
    shed: Option<Arc<Prepared>>,
    /// Latest re-validated prediction for the current plan, ms.
    last_predicted_p99_ms: f64,
    drift: Vec<DriftEvent>,
}

/// One admitted statement with its runtime accounting.
pub struct RegisteredStatement {
    pub name: String,
    pub sql: String,
    /// The statement as registered (re-validation re-degrades/relaxes by
    /// re-binding this AST, never by re-parsing client text).
    stmt: SelectStmt,
    /// Interaction kind recorded per sample (the root remote operator),
    /// so per-kind quantiles over `stats` mean what
    /// `RunMetrics::quantile_ms_of` promises. Samples carry
    /// [`LiveOpKind::index`], stats print [`LiveOpKind::name`].
    pub kind: LiveOpKind,
    state: RwLock<StatementState>,
    /// The admission budget of the tenant this statement belongs to
    /// (resolved from the name prefix at install time).
    budget: Arc<TenantBudget>,
    pub executions: AtomicU64,
    /// Wall-clock latency samples (reuses the experiment metrics type, so
    /// the stats endpoint reports the same quantiles the benchmarks do);
    /// bounded to the most recent `METRICS_CAPACITY` (4096) samples.
    pub metrics: Mutex<RunMetrics>,
}

impl RegisteredStatement {
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.metrics.lock().quantile_ms(q)
    }

    /// The current execution plan (atomic with the admission it belongs to).
    pub fn prepared(&self) -> Arc<Prepared> {
        self.state.read().prepared.clone()
    }

    /// The current admission verdict.
    pub fn admission(&self) -> Admission {
        self.state.read().admission.clone()
    }

    /// The pre-resolved point-read plan, when the current plan qualifies
    /// (atomic with [`RegisteredStatement::prepared`] — plan swaps replace
    /// both under the same lock).
    pub fn fast_point(&self) -> Option<Arc<FastPointPlan>> {
        self.state.read().fast_point.clone()
    }

    /// Latest re-validated prediction for the current plan, ms (the
    /// registration-time prediction until the first sweep).
    pub fn last_predicted_p99_ms(&self) -> f64 {
        self.state.read().last_predicted_p99_ms
    }

    /// Recent drift history, oldest first.
    pub fn drift_history(&self) -> Vec<DriftEvent> {
        self.state.read().drift.clone()
    }

    /// The most recent `n` drift events, oldest first. `stats` uses this
    /// so the reply stays bounded no matter how long the server has run.
    pub fn recent_drift(&self, n: usize) -> Vec<DriftEvent> {
        let state = self.state.read();
        let start = state.drift.len().saturating_sub(n);
        state.drift[start..].to_vec()
    }

    /// Total drift events retained (bounded by the ring size).
    pub fn drift_len(&self) -> usize {
        self.state.read().drift.len()
    }

    /// The tenant budget governing this statement's executions.
    pub fn budget(&self) -> &Arc<TenantBudget> {
        &self.budget
    }

    /// The pre-compiled shed (degraded) plan, when one exists.
    pub fn shed_prepared(&self) -> Option<Arc<Prepared>> {
        self.state.read().shed.clone()
    }

    /// The root remote operator's name (the `kind` label in words).
    pub fn kind_name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Service counters.
#[derive(Debug, Default)]
pub struct RegistryCounters {
    pub admitted: AtomicU64,
    pub degraded: AtomicU64,
    pub rejected_slo: AtomicU64,
    pub rejected_unbounded: AtomicU64,
    pub executed: AtomicU64,
    /// Executions served by the allocation-free binary point-read path
    /// (a subset of `executed`; see `server::BinaryConn`).
    pub fast_point_reads: AtomicU64,
    pub exec_errors: AtomicU64,
    /// Data-placement rebalances performed via the `rebalance` verb.
    pub rebalances: AtomicU64,
    /// Re-validation sweeps completed.
    pub revalidations: AtomicU64,
    /// Live samples folded into the models by sweeps.
    pub samples_folded: AtomicU64,
    /// Statements tightened / restored / flagged / recovered by sweeps.
    pub drift_redegraded: AtomicU64,
    pub drift_relaxed: AtomicU64,
    pub drift_flagged: AtomicU64,
    pub drift_recovered: AtomicU64,
    /// Executions refused because the tenant's admission budget was
    /// exhausted (reject policy, shed overflow, or queue timeout).
    pub budget_rejected: AtomicU64,
    /// Executions admitted into a budget's overflow band under the `Shed`
    /// policy (served the degraded plan when one exists).
    pub budget_shed: AtomicU64,
    /// Times a connection reader stalled on its max-in-flight cap (see
    /// `server::ServerTuning`).
    pub backpressure_stalls: AtomicU64,
    /// Rebalances triggered automatically by the skew threshold (a subset
    /// of `rebalances` is *not* implied: these are separate triggers).
    pub auto_rebalances: AtomicU64,
}

/// What one [`StatementRegistry::revalidate`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RevalidationSummary {
    pub sweep: u64,
    /// Live samples drained from the store and folded into the models.
    pub samples_folded: u64,
    /// Whether the sweep published a refreshed model snapshot.
    pub models_rotated: bool,
    pub statements: u64,
    pub steady: u64,
    pub redegraded: u64,
    pub relaxed: u64,
    pub flagged: u64,
    pub recovered: u64,
}

/// Result of a budget-governed execution (see
/// [`StatementRegistry::execute_governed`]).
pub struct ExecOutcome {
    pub result: QueryResult,
    /// True when the tenant's budget admitted into the overflow band and
    /// the statement's pre-compiled shed plan was served — the response is
    /// flagged `degraded` on the wire.
    pub shed: bool,
}

/// Journal for durable statement registration. The registry calls
/// [`StatementJournal::upserted`] whenever a name becomes (or replaces an)
/// executable statement and [`StatementJournal::dropped`] whenever a name
/// stops being executable (a rejected re-registration unregisters it) — a
/// restarted server replays the journal and re-validates each surviving
/// statement against its recovered models, so clients never re-prepare.
pub trait StatementJournal: Send + Sync {
    fn upserted(&self, name: &str, sql: &str);
    fn dropped(&self, name: &str);
}

/// Handle to the durability subsystem, when one is wired in (see
/// `crate::durable`). The `stats` verb reports [`DurabilityControl::health`]
/// and the `snapshot` verb drives [`DurabilityControl::checkpoint`].
pub trait DurabilityControl: Send + Sync {
    fn health(&self) -> piql_durability::DurabilityHealth;
    fn checkpoint(&self) -> std::io::Result<piql_durability::SnapshotSummary>;
}

/// Errors surfaced to protocol clients.
#[derive(Debug)]
pub enum RegistryError {
    UnknownStatement(String),
    /// The tenant's admission budget refused the execution (surfaced with
    /// the `budget-exceeded` protocol code so clients can back off).
    BudgetExceeded {
        tenant: String,
    },
    Db(DbError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownStatement(name) => {
                write!(f, "unknown statement '{name}' (prepare it first)")
            }
            RegistryError::BudgetExceeded { tenant } => {
                write!(f, "admission budget exceeded for tenant '{tenant}'")
            }
            RegistryError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<DbError> for RegistryError {
    fn from(e: DbError) -> Self {
        RegistryError::Db(e)
    }
}

/// The registry. Generic over the backend so the same service logic runs
/// on the wall-clock [`LiveCluster`] (the default) and, in harnesses, the
/// virtual-time simulator.
pub struct StatementRegistry<S: KvStore = LiveCluster> {
    db: Arc<Database<S>>,
    /// The §6.1 models, shared between admission (reads snapshots) and the
    /// re-validation sweeps (ingest + rotate).
    models: Arc<SharedModelStore>,
    slo: SloConfig,
    optimizer: Optimizer,
    statements: RwLock<BTreeMap<String, Arc<RegisteredStatement>>>,
    sweeps: AtomicU64,
    /// Serializes [`StatementRegistry::revalidate`]: the background
    /// `Revalidator` tick and client-forced `revalidate` verbs must not
    /// interleave their drain/rotate/apply phases.
    sweep_lock: Mutex<()>,
    /// Durable journal for registration changes (see [`StatementJournal`]).
    journal: RwLock<Option<Arc<dyn StatementJournal>>>,
    /// The durability subsystem, when the stack is durable (`stats` and
    /// `snapshot` reach it through here).
    durability: RwLock<Option<Arc<dyn DurabilityControl>>>,
    /// Overload-control configuration (budget defaults + rebalance trigger).
    overload: Mutex<OverloadConfig>,
    /// Tenant name → admission budget. Budgets are created lazily on first
    /// statement install / lookup and live for the registry's lifetime.
    tenants: RwLock<BTreeMap<String, Arc<TenantBudget>>>,
    pub counters: RegistryCounters,
}

impl<S: KvStore> StatementRegistry<S> {
    pub fn new(db: Arc<Database<S>>, predictor: SloPredictor, slo: SloConfig) -> Self {
        Self::with_models(
            db,
            Arc::new(SharedModelStore::from_snapshot(predictor.models)),
            slo,
        )
    }

    /// Build over an externally owned model store (e.g. shared with other
    /// services or pre-warmed by an offline trainer).
    pub fn with_models(
        db: Arc<Database<S>>,
        models: Arc<SharedModelStore>,
        slo: SloConfig,
    ) -> Self {
        StatementRegistry {
            db,
            models,
            slo,
            optimizer: Optimizer::scale_independent(),
            statements: RwLock::new(
                rank::REGISTRY_STATEMENTS,
                "registry.statements",
                BTreeMap::new(),
            ),
            sweeps: AtomicU64::new(0),
            sweep_lock: Mutex::new(rank::REGISTRY_SWEEP, "registry.sweep", ()),
            journal: RwLock::new(rank::REGISTRY_JOURNAL, "registry.journal", None),
            durability: RwLock::new(rank::REGISTRY_DURABILITY, "registry.durability", None),
            overload: Mutex::new(
                rank::REGISTRY_OVERLOAD,
                "registry.overload",
                OverloadConfig::default(),
            ),
            tenants: RwLock::new(rank::REGISTRY_TENANTS, "registry.tenants", BTreeMap::new()),
            counters: RegistryCounters::default(),
        }
    }

    /// Replace the overload-control configuration. New defaults are pushed
    /// to every existing tenant budget that was not configured explicitly.
    pub fn set_overload(&self, cfg: OverloadConfig) {
        {
            let mut current = self.overload.lock();
            *current = cfg.clone();
        }
        for budget in self.tenants.read().values() {
            budget.apply_default(cfg.default_tenant_capacity, cfg.default_policy);
        }
    }

    /// The current overload-control configuration.
    pub fn overload_config(&self) -> OverloadConfig {
        self.overload.lock().clone()
    }

    /// Explicitly configure (and pin) one tenant's budget.
    pub fn set_tenant_budget(&self, tenant: &str, capacity: Option<u32>, policy: BudgetPolicy) {
        self.budget_for(tenant).configure(capacity, policy);
    }

    /// Every tenant budget the registry has materialized, by tenant name.
    pub fn tenant_budgets(&self) -> Vec<Arc<TenantBudget>> {
        self.tenants.read().values().cloned().collect()
    }

    /// The budget for `tenant`, creating it with the current defaults on
    /// first sight.
    pub fn budget_for(&self, tenant: &str) -> Arc<TenantBudget> {
        if let Some(budget) = self.tenants.read().get(tenant) {
            return budget.clone();
        }
        let (capacity, policy) = {
            let cfg = self.overload.lock();
            (cfg.default_tenant_capacity, cfg.default_policy)
        };
        let mut tenants = self.tenants.write();
        tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantBudget::new(tenant, capacity, policy))
            .clone()
    }

    /// Install (or clear) the registration journal. Install it *after*
    /// replaying recovered statements, or the replay itself would be
    /// journaled again.
    pub fn set_journal(&self, journal: Option<Arc<dyn StatementJournal>>) {
        *self.journal.write() = journal;
    }

    /// Wire in the durability subsystem (surfaced via `stats`/`snapshot`).
    pub fn set_durability(&self, control: Option<Arc<dyn DurabilityControl>>) {
        *self.durability.write() = control;
    }

    /// The durability handle, when the stack is durable.
    pub fn durability(&self) -> Option<Arc<dyn DurabilityControl>> {
        self.durability.read().clone()
    }

    pub fn db(&self) -> &Arc<Database<S>> {
        &self.db
    }

    pub fn slo(&self) -> &SloConfig {
        &self.slo
    }

    /// The shared model store admission predicts against.
    pub fn models(&self) -> &Arc<SharedModelStore> {
        &self.models
    }

    /// Register `sql` under `name`. Returns the admission verdict; only
    /// admitted/degraded statements become executable. Re-registering a
    /// name replaces it — a rejected re-registration *unregisters* the
    /// name, so a client can never execute different SQL than it last
    /// prepared.
    pub fn register(&self, name: &str, sql: &str) -> Result<Admission, RegistryError> {
        let stmt = piql_core::parser::parse_select(sql)
            .map_err(|e| RegistryError::Db(DbError::Parse(e)))?;
        let catalog = self.db.catalog();
        let predictor = self.models.predictor();

        // Phase 1 — pure compile: no namespaces, no backfill, no KV rounds.
        let compiled = match self.optimizer.compile(&catalog, &stmt) {
            Ok(c) => c,
            Err(OptError::NotScaleIndependent(report)) => {
                self.counters
                    .rejected_unbounded
                    .fetch_add(1, Ordering::Relaxed);
                self.uninstall(name);
                return Ok(Admission::RejectedUnbounded { report });
            }
            Err(e) => return Err(RegistryError::Db(DbError::Compile(e))),
        };

        // Phase 2 — SLO prediction (§6.2/6.3) on the compiled plan.
        let prediction = predictor.predict(&compiled);
        let p99 = prediction.max_p99_ms;
        if prediction.meets_slo(self.slo.slo_ms, self.slo.interval_confidence) {
            let kind = root_remote_kind(&compiled.physical);
            let prepared = self.db.prepare_stmt(&stmt)?;
            self.install(
                name,
                sql,
                stmt.clone(),
                kind,
                prepared,
                Admission::Admitted {
                    predicted_p99_ms: p99,
                },
                stmt.bound.map(|b| b.count()),
            );
            self.counters.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Admission::Admitted {
                predicted_p99_ms: p99,
            });
        }

        // Phase 3 — advisor-guided degradation (§6.4): find the largest
        // LIMIT/PAGINATE whose prediction still meets the SLO.
        if self.slo.allow_degrade {
            if let Some(bound) = stmt.bound {
                if let Some(limit) =
                    self.suggest_degraded_limit(&predictor, &catalog, &stmt, bound.count())
                {
                    let degraded = rebound(&stmt, limit);
                    let prepared = self.db.prepare_stmt(&degraded)?;
                    let kind = root_remote_kind(&prepared.compiled.physical);
                    let admission = Admission::Degraded {
                        predicted_p99_ms: predictor.predict(&prepared.compiled).max_p99_ms,
                        original_limit: bound.count(),
                        limit,
                    };
                    self.install(
                        name,
                        sql,
                        stmt.clone(),
                        kind,
                        prepared,
                        admission.clone(),
                        Some(limit),
                    );
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                    return Ok(admission);
                }
            }
        }

        self.counters.rejected_slo.fetch_add(1, Ordering::Relaxed);
        self.uninstall(name);
        Ok(Admission::RejectedSlo {
            predicted_p99_ms: p99,
        })
    }

    /// Probe smaller bounds with the §6.4 heatmap advisor. Pure compiles
    /// only — still zero storage operations.
    fn suggest_degraded_limit(
        &self,
        predictor: &SloPredictor,
        catalog: &piql_core::catalog::Catalog,
        stmt: &SelectStmt,
        below: u64,
    ) -> Option<u64> {
        let mut candidates: Vec<u64> = ALPHA_GRID
            .iter()
            .map(|&a| a as u64)
            .filter(|&a| a < below)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return None;
        }
        let heatmap = Heatmap::build(
            predictor,
            "result limit",
            "-",
            candidates,
            vec![0],
            |limit, _| {
                let probe = rebound(stmt, limit);
                self.optimizer
                    .compile(catalog, &probe)
                    // Rebinding an admitted statement to a smaller LIMIT
                    // is a strict restriction of a plan that already
                    // compiled; failure is a compiler bug, not
                    // client-reachable input.
                    // lint:allow(request-unwrap)
                    .expect("smaller bound of a bounded query must compile")
            },
        );
        heatmap.suggest_row_limit(0, self.slo.slo_ms)
    }

    /// Pre-compile the shed plan: the statement rebound to the tightest
    /// advisor grid bound, when that is strictly tighter than the current
    /// plan's bound. Pure control-plane work — runs at install and in the
    /// sweep's decide phase, never under the statement state lock.
    fn build_shed(&self, stmt: &SelectStmt, limit: Option<u64>) -> Option<Arc<Prepared>> {
        let current = limit?;
        let tightest = ALPHA_GRID.iter().map(|&a| a as u64).min()?;
        if tightest >= current {
            return None;
        }
        self.db
            .prepare_stmt(&rebound(stmt, tightest))
            .ok()
            .map(Arc::new)
    }

    fn uninstall(&self, name: &str) {
        // the journal append happens while the statements write lock is
        // still held: two racing (un)registrations of the same name must
        // journal in the same order their map updates land, or replay
        // could resurrect the losing statement. Registration is a rare
        // control-plane operation, so the fsync-length hold is acceptable.
        let mut statements = self.statements.write();
        let removed = statements.remove(name).is_some();
        // journal only transitions: dropping a name that was never
        // executable would bloat the log with no-op records
        if removed {
            if let Some(journal) = self.journal.read().as_ref() {
                journal.dropped(name);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn install(
        &self,
        name: &str,
        sql: &str,
        stmt: SelectStmt,
        kind: LiveOpKind,
        prepared: Prepared,
        admission: Admission,
        limit: Option<u64>,
    ) {
        let last_predicted_p99_ms = admission.predicted_p99_ms().unwrap_or(0.0);
        let fast_point = fast_point_plan(&self.db, &prepared);
        // tenant budget + shed plan resolve before the statements write
        // lock: both take their own locks and must not nest inside it
        let budget = self.budget_for(tenant_of(name));
        let shed = self.build_shed(&stmt, limit);
        let statement = Arc::new(RegisteredStatement {
            name: name.to_string(),
            sql: sql.to_string(),
            stmt,
            kind,
            state: RwLock::new(
                rank::STATEMENT_STATE,
                "registry.statement.state",
                StatementState {
                    prepared: Arc::new(prepared),
                    fast_point,
                    admission,
                    limit,
                    shed,
                    last_predicted_p99_ms,
                    drift: Vec::new(),
                },
            ),
            budget,
            executions: AtomicU64::new(0),
            metrics: Mutex::new(
                rank::STATEMENT_METRICS,
                "registry.statement.metrics",
                RunMetrics::bounded(METRICS_CAPACITY),
            ),
        });
        // journal while still holding the write lock so journal order
        // matches map-state order (see `uninstall`)
        let mut statements = self.statements.write();
        statements.insert(name.to_string(), statement);
        if let Some(journal) = self.journal.read().as_ref() {
            journal.upserted(name, sql);
        }
    }

    pub fn get(&self, name: &str) -> Option<Arc<RegisteredStatement>> {
        self.statements.read().get(name).cloned()
    }

    pub fn list(&self) -> Vec<Arc<RegisteredStatement>> {
        self.statements.read().values().cloned().collect()
    }

    /// Execute a registered statement, recording wall-clock latency under
    /// the statement's interaction kind. Equivalent to
    /// [`StatementRegistry::execute_governed`] with the shed flag dropped.
    pub fn execute(
        &self,
        session: &mut Session,
        name: &str,
        params: &piql_core::plan::params::Params,
        cursor: Option<&Cursor>,
    ) -> Result<QueryResult, RegistryError> {
        self.execute_governed(session, name, params, cursor)
            .map(|outcome| outcome.result)
    }

    /// Execute a registered statement through its tenant's admission
    /// budget. The budget permit is held (RAII) for the whole execution —
    /// it releases on success, error, and panic-unwind alike, so in-flight
    /// accounting cannot leak across disconnects.
    pub fn execute_governed(
        &self,
        session: &mut Session,
        name: &str,
        params: &piql_core::plan::params::Params,
        cursor: Option<&Cursor>,
    ) -> Result<ExecOutcome, RegistryError> {
        let statement = self
            .get(name)
            .ok_or_else(|| RegistryError::UnknownStatement(name.to_string()))?;
        let (_permit, shed_admission) = match statement.budget().admit() {
            BudgetDecision::Go(permit) => (permit, false),
            BudgetDecision::Shed(permit) => (Some(permit), true),
            BudgetDecision::Reject => {
                self.counters
                    .budget_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(RegistryError::BudgetExceeded {
                    tenant: statement.budget().tenant().to_string(),
                });
            }
        };
        // a shed admission serves the pre-compiled degraded plan when the
        // statement has one; otherwise the overflow slot runs the full plan
        let (prepared, shed) = if shed_admission {
            self.counters.budget_shed.fetch_add(1, Ordering::Relaxed);
            match statement.shed_prepared() {
                Some(shed_plan) => (shed_plan, true),
                None => (statement.prepared(), false),
            }
        } else {
            (statement.prepared(), false)
        };
        // start timing from *now*, not from the previous round's completion
        // — otherwise client think-time (and, on a fresh session, the whole
        // backend uptime) would pollute the latency quantiles
        self.db.store().sync_session(session);
        let start = session.begin();
        let result =
            self.db
                .execute_with(session, &prepared, params, ExecStrategy::Parallel, cursor);
        match result {
            Ok(r) => {
                let latency = session.elapsed_since(start);
                statement.executions.fetch_add(1, Ordering::Relaxed);
                statement
                    .metrics
                    .lock()
                    .record(start, latency, statement.kind.index());
                self.counters.executed.fetch_add(1, Ordering::Relaxed);
                Ok(ExecOutcome { result: r, shed })
            }
            Err(e) => {
                self.counters.exec_errors.fetch_add(1, Ordering::Relaxed);
                Err(RegistryError::Db(e))
            }
        }
    }

    /// Execute a DML statement (writes are always single-record bounded
    /// operations, so they need no admission decision).
    pub fn execute_dml(
        &self,
        session: &mut Session,
        sql: &str,
        params: &piql_core::plan::params::Params,
    ) -> Result<(), RegistryError> {
        self.db
            .execute_dml(session, sql, params)
            .map_err(RegistryError::Db)
    }

    /// Recompute the backend's data placement from current contents (the
    /// protocol's `rebalance` verb): every namespace is re-split at
    /// learned key-distribution quantiles while sessions keep executing.
    /// Returns the post-rebalance shard balance of backends that track
    /// one.
    pub fn rebalance(&self) -> Vec<piql_kv::NsBalance> {
        self.db.cluster().rebalance();
        self.counters.rebalances.fetch_add(1, Ordering::Relaxed);
        self.db.cluster().balance()
    }

    // ------------------------------------------------- the feedback loop

    /// One re-validation sweep: drain live latency samples from the
    /// backend, fold them into the shared models (each sweep closes one
    /// observation interval), then re-predict every registered statement
    /// against the refreshed snapshot and update its admission in place.
    pub fn revalidate(&self) -> RevalidationSummary {
        // one sweep at a time: a client-forced `revalidate` verb must not
        // interleave with the background Revalidator's tick (both would
        // drain/rotate and double-apply drift actions)
        let _sweeping = self.sweep_lock.lock();
        let sweep = self.sweeps.fetch_add(1, Ordering::Relaxed) + 1;
        let samples = self.db.store().drain_samples();
        self.models.ingest(&samples);
        let folded = self.models.rotate();
        let predictor = self.models.predictor();

        let mut summary = RevalidationSummary {
            sweep,
            samples_folded: folded,
            models_rotated: folded > 0,
            ..Default::default()
        };
        for statement in self.list() {
            let action = self.revalidate_statement(&statement, &predictor, sweep);
            summary.statements += 1;
            match action {
                DriftAction::Steady => summary.steady += 1,
                DriftAction::Redegraded => summary.redegraded += 1,
                DriftAction::Relaxed => summary.relaxed += 1,
                DriftAction::Flagged => summary.flagged += 1,
                DriftAction::Recovered => summary.recovered += 1,
            }
        }
        let c = &self.counters;
        c.revalidations.fetch_add(1, Ordering::Relaxed);
        c.samples_folded.fetch_add(folded, Ordering::Relaxed);
        c.drift_redegraded
            .fetch_add(summary.redegraded, Ordering::Relaxed);
        c.drift_relaxed
            .fetch_add(summary.relaxed, Ordering::Relaxed);
        c.drift_flagged
            .fetch_add(summary.flagged, Ordering::Relaxed);
        c.drift_recovered
            .fetch_add(summary.recovered, Ordering::Relaxed);

        // Skew-triggered rebalance: a sweep already looked at the whole
        // service, so it is the natural place to act on placement skew.
        // Op counters reset on rebalance, so `rebalance_min_ops` doubles
        // as the hysteresis between consecutive triggers.
        let (threshold, min_ops) = {
            let cfg = self.overload.lock();
            (cfg.rebalance_max_op_share, cfg.rebalance_min_ops)
        };
        if threshold > 0.0 && self.db.cluster().maybe_rebalance(threshold, min_ops) {
            c.auto_rebalances.fetch_add(1, Ordering::Relaxed);
        }
        summary
    }

    /// Sweeps completed so far.
    pub fn sweep_count(&self) -> u64 {
        self.sweeps.load(Ordering::Relaxed)
    }

    fn revalidate_statement(
        &self,
        statement: &Arc<RegisteredStatement>,
        predictor: &SloPredictor,
        sweep: u64,
    ) -> DriftAction {
        let catalog = self.db.catalog();
        // Decide first, apply later: compiles and the advisor grid search
        // are the expensive part, and they must not run under the state
        // write lock or every sweep would stall this statement's executors
        // (which read-lock the state to clone the plan). Sweeps are
        // serialized by `sweep_lock`, so no other writer races the apply.
        let (prepared, admission, limit) = {
            let state = statement.state.read();
            (state.prepared.clone(), state.admission.clone(), state.limit)
        };
        let prediction = predictor.predict(&prepared.compiled);
        let p99 = prediction.max_p99_ms;
        let meets = prediction.meets_slo(self.slo.slo_ms, self.slo.interval_confidence);
        let original_limit = statement.stmt.bound.map(|b| b.count());
        let was_flagged = matches!(admission, Admission::Flagged { .. });
        let was_degraded = matches!(admission, Admission::Degraded { .. });

        // (action, new admission, plan swap) — the swap carries the newly
        // prepared plan, its bound, its prediction, and the matching
        // pre-compiled shed plan
        type Swap = Option<(Arc<Prepared>, Option<u64>, f64, Option<Arc<Prepared>>)>;
        let (action, new_admission, swap): (DriftAction, Admission, Swap) = if meets {
            if was_flagged {
                // a flagged statement meets the SLO again: restore the
                // verdict its current plan shape implies
                let restored = match (limit, original_limit) {
                    (Some(l), Some(o)) if l < o => Admission::Degraded {
                        predicted_p99_ms: p99,
                        original_limit: o,
                        limit: l,
                    },
                    _ => Admission::Admitted {
                        predicted_p99_ms: p99,
                    },
                };
                (DriftAction::Recovered, restored, None)
            } else if let (true, Some(l), Some(o)) = (was_degraded, limit, original_limit) {
                if l < o {
                    // a degraded statement under a faster store: try
                    // restoring the original bound (pure compile + predict)
                    match self.try_relax(&catalog, statement, predictor) {
                        Some((restored, restored_p99)) => (
                            DriftAction::Relaxed,
                            Admission::Admitted {
                                predicted_p99_ms: restored_p99,
                            },
                            Some((
                                Arc::new(restored),
                                Some(o),
                                restored_p99,
                                self.build_shed(&statement.stmt, Some(o)),
                            )),
                        ),
                        None => (
                            DriftAction::Steady,
                            Admission::Degraded {
                                predicted_p99_ms: p99,
                                original_limit: o,
                                limit: l,
                            },
                            None,
                        ),
                    }
                } else {
                    (
                        DriftAction::Steady,
                        Admission::Admitted {
                            predicted_p99_ms: p99,
                        },
                        None,
                    )
                }
            } else {
                (
                    DriftAction::Steady,
                    Admission::Admitted {
                        predicted_p99_ms: p99,
                    },
                    None,
                )
            }
        } else {
            // the current plan drifted over the SLO: tighten if the advisor
            // finds a feasible smaller bound, otherwise flag
            let tighter = if self.slo.allow_degrade {
                limit.and_then(|current| {
                    self.suggest_degraded_limit(predictor, &catalog, &statement.stmt, current)
                })
            } else {
                None
            };
            let flagged = Admission::Flagged {
                predicted_p99_ms: p99,
                diagnostics: flag_diagnostics(predictor, statement, &prepared, &self.slo),
            };
            match (tighter, original_limit) {
                (Some(l), Some(o)) => match self.db.prepare_stmt(&rebound(&statement.stmt, l)) {
                    Ok(tightened) => {
                        let new_p99 = predictor.predict(&tightened.compiled).max_p99_ms;
                        (
                            DriftAction::Redegraded,
                            Admission::Degraded {
                                predicted_p99_ms: new_p99,
                                original_limit: o,
                                limit: l,
                            },
                            Some((
                                Arc::new(tightened),
                                Some(l),
                                new_p99,
                                self.build_shed(&statement.stmt, Some(l)),
                            )),
                        )
                    }
                    Err(_) => (DriftAction::Flagged, flagged, None),
                },
                _ => {
                    let action = if was_flagged {
                        DriftAction::Steady
                    } else {
                        DriftAction::Flagged
                    };
                    (action, flagged, None)
                }
            }
        };

        // apply: brief write lock, no compiles inside
        let mut state = statement.state.write();
        state.admission = new_admission;
        state.last_predicted_p99_ms = p99;
        if let Some((new_prepared, new_limit, new_p99, new_shed)) = swap {
            state.fast_point = fast_point_plan(&self.db, &new_prepared);
            state.prepared = new_prepared;
            state.limit = new_limit;
            state.last_predicted_p99_ms = new_p99;
            state.shed = new_shed;
        }
        let recorded_p99 = state.last_predicted_p99_ms;
        state.drift.push(DriftEvent {
            sweep,
            predicted_p99_ms: recorded_p99,
            action,
        });
        if state.drift.len() > DRIFT_HISTORY {
            let excess = state.drift.len() - DRIFT_HISTORY;
            state.drift.drain(..excess);
        }
        action
    }

    /// Compile + predict the statement at its original bound; `Some` iff
    /// that meets the SLO (pure compile — zero storage operations unless
    /// the plan's indexes vanished, which `prepare_stmt` would recreate).
    fn try_relax(
        &self,
        catalog: &piql_core::catalog::Catalog,
        statement: &RegisteredStatement,
        predictor: &SloPredictor,
    ) -> Option<(Prepared, f64)> {
        let compiled = self.optimizer.compile(catalog, &statement.stmt).ok()?;
        let prediction = predictor.predict(&compiled);
        if !prediction.meets_slo(self.slo.slo_ms, self.slo.interval_confidence) {
            return None;
        }
        let prepared = self.db.prepare_stmt(&statement.stmt).ok()?;
        Some((prepared, prediction.max_p99_ms))
    }
}

/// The structured payload of a [`Admission::Flagged`] verdict: run the
/// static auditor over the statement's *current* plan (pure — attribution
/// and prediction only, no storage operations) and keep its diagnostics,
/// so a flag names the offending operator and the dominating cost term
/// instead of just a number.
fn flag_diagnostics(
    predictor: &SloPredictor,
    statement: &RegisteredStatement,
    prepared: &Prepared,
    slo: &SloConfig,
) -> Vec<piql_audit::Diagnostic> {
    piql_audit::audit_compiled(
        predictor,
        &statement.name,
        &statement.sql,
        &prepared.compiled,
        piql_audit::SloSpec {
            slo_ms: slo.slo_ms,
            confidence: slo.interval_confidence,
        },
    )
    .diagnostics
}

/// `stmt` with its row bound replaced by `limit` (kind-preserving).
fn rebound(stmt: &SelectStmt, limit: u64) -> SelectStmt {
    let mut out = stmt.clone();
    out.bound = Some(match stmt.bound {
        Some(RowBound::Paginate(_)) => RowBound::Paginate(limit),
        _ => RowBound::Limit(limit),
    });
    out
}

/// The root-most remote operator — the statement's interaction kind for
/// per-kind latency reporting.
fn root_remote_kind(plan: &PhysicalPlan) -> LiveOpKind {
    fn walk(plan: &PhysicalPlan) -> Option<LiveOpKind> {
        match plan {
            PhysicalPlan::IndexScan { .. } => Some(LiveOpKind::IndexScan),
            PhysicalPlan::IndexFKJoin { .. } => Some(LiveOpKind::IndexFKJoin),
            PhysicalPlan::SortedIndexJoin { .. } => Some(LiveOpKind::SortedIndexJoin),
            other => other.child().and_then(walk),
        }
    }
    walk(plan).unwrap_or(LiveOpKind::IndexScan)
}

/// A background thread that runs [`StatementRegistry::revalidate`] every
/// `period` — the always-on half of the feedback loop. Dropping it stops
/// the sweeps (joining the thread).
pub struct Revalidator {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Revalidator {
    pub fn spawn<S: KvStore + 'static>(
        registry: Arc<StatementRegistry<S>>,
        period: Duration,
    ) -> Revalidator {
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("piql-revalidate".into())
                .spawn(move || {
                    // sleep in short ticks so shutdown never waits a period
                    let tick = period
                        .min(Duration::from_millis(20))
                        .max(Duration::from_millis(1));
                    let mut slept = Duration::ZERO;
                    loop {
                        std::thread::sleep(tick);
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        slept += tick;
                        if slept >= period {
                            slept = Duration::ZERO;
                            registry.revalidate();
                        }
                    }
                })
                // Construction-time spawn, before any request is accepted.
                // lint:allow(request-unwrap)
                .expect("spawn revalidator thread")
        };
        Revalidator {
            shutdown,
            handle: Some(handle),
        }
    }
}

impl Drop for Revalidator {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
