//! The multi-threaded TCP front-end.
//!
//! One OS thread per connection (the protocol is line-oriented and
//! blocking), one engine [`Session`] per connection. All state a client
//! needs to resume — registered statement names and pagination cursors —
//! lives either in the shared registry or in the cursor the client holds,
//! so reconnecting to the same (or another) server continues cleanly.
//!
//! Connection threads only *block*; storage parallelism comes from the
//! backing cluster. On a `LiveCluster`, every session's request rounds
//! fan out over the cluster's one shared `RoundPool` (sized by
//! `LiveConfig::pool_threads`), so N concurrent connections never run
//! more than the configured number of storage workers — connections add
//! queueing, not thread stampede.

use crate::json::Json;
use crate::protocol::{
    cursor_to_json, err_response, ok_response, parse_request, row_to_json, Request,
};
use crate::registry::{Admission, Revalidator, SloConfig, StatementRegistry};
use parking_lot::Mutex;
use piql_core::plan::params::Params;
use piql_engine::Database;
use piql_kv::{KvStore, LiveCluster, NsBalance, Session};
use piql_predict::SloPredictor;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running query service.
pub struct PiqlServer<S: KvStore + 'static = LiveCluster> {
    registry: Arc<StatementRegistry<S>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    /// Clones of every accepted stream, so shutdown can close them and
    /// unblock their handler threads.
    streams: Arc<Mutex<Vec<TcpStream>>>,
    /// Periodic admission re-validation (see
    /// [`PiqlServer::enable_revalidation`]); stopped when the server drops.
    revalidator: Option<Revalidator>,
}

impl<S: KvStore + 'static> PiqlServer<S> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn start(
        db: Arc<Database<S>>,
        predictor: SloPredictor,
        slo: SloConfig,
        addr: &str,
    ) -> io::Result<Self> {
        let registry = Arc::new(StatementRegistry::new(db, predictor, slo));
        Self::start_with_registry(registry, addr)
    }

    /// Start serving an externally built registry (lets callers pre-register
    /// statements before the first client connects).
    pub fn start_with_registry(
        registry: Arc<StatementRegistry<S>>,
        addr: &str,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let registry = registry.clone();
            let shutdown = shutdown.clone();
            let connections = connections.clone();
            let streams = streams.clone();
            std::thread::Builder::new()
                .name("piql-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => {
                                // transient accept failure (e.g. fd
                                // exhaustion): back off instead of spinning
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                continue;
                            }
                        };
                        connections.fetch_add(1, Ordering::Relaxed);
                        {
                            let mut held = streams.lock();
                            // drop entries whose handler already finished
                            held.retain(|s| s.peer_addr().is_ok());
                            if let Ok(clone) = stream.try_clone() {
                                held.push(clone);
                            }
                        }
                        let registry = registry.clone();
                        let _ =
                            std::thread::Builder::new()
                                .name("piql-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(stream, &registry);
                                });
                    }
                })?
        };
        Ok(PiqlServer {
            registry,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
            streams,
            revalidator: None,
        })
    }

    /// Start the background [`Revalidator`]: every `period` the registry
    /// folds drained live samples into the models and re-predicts every
    /// registered statement (clients can also force a sweep with the
    /// `revalidate` verb). Idempotent: a second call replaces the period.
    pub fn enable_revalidation(&mut self, period: std::time::Duration) {
        self.revalidator = Some(Revalidator::spawn(self.registry.clone(), period));
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn registry(&self) -> &Arc<StatementRegistry<S>> {
        &self.registry
    }

    /// Connections accepted since start.
    pub fn connection_count(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

impl<S: KvStore + 'static> Drop for PiqlServer<S> {
    fn drop(&mut self) {
        // stop the sweep thread first so no re-validation runs mid-teardown
        self.revalidator = None;
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns and observes the flag.
        // A server bound to an unspecified address (0.0.0.0 / [::]) is not
        // connectable *at* that address, so aim the poke at loopback on
        // the bound port — otherwise the accept thread would only exit on
        // the next real client.
        let poke = if self.local_addr.ip().is_unspecified() {
            let loopback: IpAddr = match self.local_addr.ip() {
                IpAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                IpAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, self.local_addr.port())
        } else {
            self.local_addr
        };
        let _ = TcpStream::connect(poke);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // close every live connection so handler threads blocked in
        // `lines()` unblock and exit rather than outliving the server
        for stream in self.streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// Serve one client until EOF. Every request gets exactly one response
/// line; protocol errors are answered (not fatal) so a client bug cannot
/// wedge the connection out from under its own pipeline.
fn serve_connection<S: KvStore>(
    stream: TcpStream,
    registry: &StatementRegistry<S>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut session = Session::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&line, &mut session, registry);
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Dispatch one request line to a response object.
pub fn handle_line<S: KvStore>(
    line: &str,
    session: &mut Session,
    registry: &StatementRegistry<S>,
) -> Json {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return err_response(e.to_string()),
    };
    handle_request(&request, session, registry)
}

pub fn handle_request<S: KvStore>(
    request: &Request,
    session: &mut Session,
    registry: &StatementRegistry<S>,
) -> Json {
    match request {
        Request::Prepare { name, sql } => match registry.register(name, sql) {
            Ok(admission) => {
                let mut fields = vec![("status", Json::str(admission.verdict()))];
                match &admission {
                    Admission::Admitted { predicted_p99_ms } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                    }
                    Admission::Degraded {
                        predicted_p99_ms,
                        original_limit,
                        limit,
                    } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                        fields.push(("original_limit", Json::Int(*original_limit as i64)));
                        fields.push(("limit", Json::Int(*limit as i64)));
                    }
                    Admission::RejectedSlo { predicted_p99_ms } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                    }
                    Admission::RejectedUnbounded { report } => {
                        fields.push(("report", Json::str(report.clone())));
                    }
                    // registration never flags (flags come from sweeps)
                    Admission::Flagged { predicted_p99_ms } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                    }
                }
                if admission.is_admitted() {
                    let statement = registry.get(name).expect("admitted statement installed");
                    let prepared = statement.prepared();
                    fields.push((
                        "columns",
                        Json::Arr(
                            prepared
                                .columns
                                .iter()
                                .map(|c| Json::str(c.clone()))
                                .collect(),
                        ),
                    ));
                    let bounds = &prepared.compiled.bounds;
                    fields.push((
                        "bounds",
                        Json::obj([
                            ("requests", Json::Int(bounds.requests as i64)),
                            ("rounds", Json::Int(bounds.rounds as i64)),
                            ("tuples", Json::Int(bounds.tuples as i64)),
                        ]),
                    ));
                }
                ok_response(fields)
            }
            Err(e) => err_response(e.to_string()),
        },
        Request::Execute {
            name,
            params,
            cursor,
        } => run_execute(session, registry, name, params, cursor.as_ref()),
        Request::CursorNext {
            name,
            params,
            cursor,
        } => run_execute(session, registry, name, params, Some(cursor)),
        Request::Dml { sql, params } => {
            let p = build_params(params);
            match registry.execute_dml(session, sql, &p) {
                Ok(()) => ok_response([]),
                Err(e) => err_response(e.to_string()),
            }
        }
        Request::Stats => stats_response(registry),
        Request::Revalidate => {
            let summary = registry.revalidate();
            ok_response([
                ("sweep", Json::Int(summary.sweep as i64)),
                ("samples_folded", Json::Int(summary.samples_folded as i64)),
                ("models_rotated", Json::Bool(summary.models_rotated)),
                ("statements", Json::Int(summary.statements as i64)),
                ("steady", Json::Int(summary.steady as i64)),
                ("redegraded", Json::Int(summary.redegraded as i64)),
                ("relaxed", Json::Int(summary.relaxed as i64)),
                ("flagged", Json::Int(summary.flagged as i64)),
                ("recovered", Json::Int(summary.recovered as i64)),
            ])
        }
        Request::Rebalance => {
            let balance = registry.rebalance();
            ok_response([
                (
                    "rebalances",
                    Json::Int(registry.counters.rebalances.load(Ordering::Relaxed) as i64),
                ),
                ("shard_balance", balance_to_json(&balance)),
            ])
        }
    }
}

/// Per-namespace shard balance as the wire object (`stats` and the
/// `rebalance` verb both ship it).
fn balance_to_json(balance: &[NsBalance]) -> Json {
    Json::Arr(
        balance
            .iter()
            .map(|b| {
                Json::obj([
                    ("namespace", Json::str(b.name.clone())),
                    ("shards", Json::Int(b.shards as i64)),
                    ("entries", Json::Int(b.total_entries() as i64)),
                    ("max_entry_share", Json::Float(b.max_entry_share())),
                    ("max_op_share", Json::Float(b.max_op_share())),
                ])
            })
            .collect(),
    )
}

fn build_params(values: &[piql_core::plan::params::ParamValue]) -> Params {
    let mut p = Params::new();
    for (i, v) in values.iter().enumerate() {
        p.set(i, v.clone());
    }
    p
}

fn run_execute<S: KvStore>(
    session: &mut Session,
    registry: &StatementRegistry<S>,
    name: &str,
    params: &[piql_core::plan::params::ParamValue],
    cursor: Option<&piql_engine::Cursor>,
) -> Json {
    let p = build_params(params);
    match registry.execute(session, name, &p, cursor) {
        Ok(result) => ok_response([
            (
                "rows",
                Json::Arr(
                    result
                        .rows
                        .iter()
                        .map(|t| row_to_json(t.values()))
                        .collect(),
                ),
            ),
            ("cursor", cursor_to_json(&result.cursor)),
        ]),
        Err(e) => err_response(e.to_string()),
    }
}

fn stats_response<S: KvStore>(registry: &StatementRegistry<S>) -> Json {
    let c = &registry.counters;
    let statements: Vec<Json> = registry
        .list()
        .iter()
        .map(|s| {
            let admission = s.admission();
            let mut fields = vec![
                ("name", Json::str(s.name.clone())),
                ("status", Json::str(admission.verdict())),
                ("kind", Json::str(s.kind_name())),
                (
                    "executions",
                    Json::Int(s.executions.load(Ordering::Relaxed) as i64),
                ),
                // observed quantiles next to the refreshed prediction: the
                // pair the feedback loop exists to keep honest
                ("p50_ms", Json::Float(s.quantile_ms(0.5))),
                ("p99_ms", Json::Float(s.quantile_ms(0.99))),
                ("predicted_p99_ms", Json::Float(s.last_predicted_p99_ms())),
            ];
            if let Admission::Degraded {
                original_limit,
                limit,
                ..
            } = &admission
            {
                fields.push(("original_limit", Json::Int(*original_limit as i64)));
                fields.push(("limit", Json::Int(*limit as i64)));
            }
            let drift = s.drift_history();
            if !drift.is_empty() {
                fields.push((
                    "drift",
                    Json::Arr(
                        drift
                            .iter()
                            .map(|d| {
                                Json::obj([
                                    ("sweep", Json::Int(d.sweep as i64)),
                                    ("predicted_p99_ms", Json::Float(d.predicted_p99_ms)),
                                    ("action", Json::str(d.action.name())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    ok_response([
        (
            "admitted",
            Json::Int(c.admitted.load(Ordering::Relaxed) as i64),
        ),
        (
            "degraded",
            Json::Int(c.degraded.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected_slo",
            Json::Int(c.rejected_slo.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected_unbounded",
            Json::Int(c.rejected_unbounded.load(Ordering::Relaxed) as i64),
        ),
        (
            "executed",
            Json::Int(c.executed.load(Ordering::Relaxed) as i64),
        ),
        (
            "exec_errors",
            Json::Int(c.exec_errors.load(Ordering::Relaxed) as i64),
        ),
        (
            "revalidations",
            Json::Int(c.revalidations.load(Ordering::Relaxed) as i64),
        ),
        (
            "samples_folded",
            Json::Int(c.samples_folded.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_redegraded",
            Json::Int(c.drift_redegraded.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_relaxed",
            Json::Int(c.drift_relaxed.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_flagged",
            Json::Int(c.drift_flagged.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_recovered",
            Json::Int(c.drift_recovered.load(Ordering::Relaxed) as i64),
        ),
        (
            "rebalances",
            Json::Int(c.rebalances.load(Ordering::Relaxed) as i64),
        ),
        (
            "shard_balance",
            balance_to_json(&registry.db().cluster().balance()),
        ),
        ("slo_ms", Json::Float(registry.slo().slo_ms)),
        ("statements", Json::Arr(statements)),
    ])
}
