//! The multi-threaded, pipelined TCP front-end.
//!
//! Every connection speaks one of two codecs behind the same [`Wire`]
//! seam: newline-delimited JSON (v2, the default) or length-prefixed
//! binary frames (v3, negotiated when the first byte is the
//! [`binary::MAGIC`] preamble — no JSON line can start with `0xB3`, so
//! sniffing is unambiguous).
//!
//! A JSON connection is split into two halves (the wire contract they
//! implement is PROTOCOL.md §5):
//!
//! * a **reader** (the connection's own thread) that decodes request
//!   lines continuously — it never executes anything, so a slow query
//!   can't stop later lines from being decoded and dispatched, and
//! * a **writer** thread that serializes completed responses back,
//!   flushing only when no further response is immediately ready, so a
//!   pipelined burst coalesces into few syscalls instead of one
//!   flush-per-response.
//!
//! Between them, request handling runs on a server-wide dispatch
//! [`RoundPool`] in two lanes:
//!
//! * requests carrying an `id` are handled **concurrently** and answered
//!   in *completion order* (the id is how the client correlates); each
//!   in-flight request borrows a [`Session`] from the connection's idle
//!   pool;
//! * requests without an `id` run **one at a time, in arrival order, on
//!   the connection's primary session** — byte-for-byte the pre-pipelining
//!   behavior, so legacy clients observe nothing new.
//!
//! All state a client needs to resume — registered statement names and
//! pagination cursors — lives either in the shared registry or in the
//! cursor the client holds, so reconnecting to the same (or another)
//! server continues cleanly.
//!
//! A **binary** (v3) connection is one strictly ordered lane run inline
//! on its own thread by a [`BinaryConn`]: decode → route → respond with
//! per-connection scratch buffers, so the warm point-read path — a
//! registered statement whose plan is a full-primary-key lookup (see
//! `FastPointPlan`) — performs **zero heap allocations** per request
//! (pinned by a counting-allocator test). Responses are byte-identical
//! to the general path's; a client wanting concurrency opens N
//! connections (PROTOCOL.md §9 makes no completion-order promise
//! usable across frames of one binary connection).
//!
//! Threads only *block*; storage parallelism comes from the backing
//! cluster. On a `LiveCluster`, every session's request rounds fan out
//! over the cluster's one shared `RoundPool` (sized by
//! `LiveConfig::pool_threads`), and request handling shares the one
//! dispatch pool — N concurrent connections add queueing, not thread
//! stampede.

use crate::binary::{self, BinaryWire, OP_EXECUTE, OP_RESPONSE};
use crate::budget::BudgetDecision;
use crate::json::Json;
use crate::protocol::{
    budget_exceeded_response, cursor_to_json, err_response, ok_response, parse_request,
    row_to_json, Envelope, Request, RequestId,
};
use crate::registry::{
    Admission, FastKeyPart, RegistryError, Revalidator, SloConfig, StatementRegistry,
};
use crate::wire::{JsonWire, Wire};
use piql_analysis::ordered::{Condvar, Mutex};
use piql_analysis::rank;
use piql_core::codec::key::{encode_component_ref, Dir};
use piql_core::codec::row::RowReader;
use piql_core::plan::params::Params;
use piql_engine::Database;
use piql_kv::{KvStore, LiveCluster, LiveOpKind, NsBalance, OpTag, RoundPool, Session};
use piql_predict::SloPredictor;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Server-level knobs beyond the registry's own configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerTuning {
    /// Width of the server-wide request-handling pool. `0` degrades every
    /// connection to inline (strictly sequential) handling.
    pub dispatch_threads: usize,
    /// Per-connection backpressure: the reader lane stops decoding once
    /// this many requests are decoded but not yet written back. `0`
    /// disables the cap (the pre-existing behavior — an unbounded window).
    /// Applies to JSON (v2) connections; a binary (v3) connection is
    /// inherently one-at-a-time and needs no cap.
    pub max_in_flight_per_conn: usize,
}

impl Default for ServerTuning {
    fn default() -> Self {
        ServerTuning {
            dispatch_threads: piql_kv::pool::default_pool_threads(),
            max_in_flight_per_conn: 0,
        }
    }
}

/// A running query service.
pub struct PiqlServer<S: KvStore + 'static = LiveCluster> {
    registry: Arc<StatementRegistry<S>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    /// Clones of every accepted stream, so shutdown can close them and
    /// unblock their handler threads.
    streams: Arc<Mutex<Vec<TcpStream>>>,
    /// Periodic admission re-validation (see
    /// [`PiqlServer::enable_revalidation`]); stopped when the server drops.
    revalidator: Option<Revalidator>,
    /// The server-wide request-handling pool: pipelined (`id`-carrying)
    /// requests and the per-connection strictly ordered lanes all run on
    /// these workers.
    dispatch: Arc<RoundPool>,
}

impl<S: KvStore + 'static> PiqlServer<S> {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn start(
        db: Arc<Database<S>>,
        predictor: SloPredictor,
        slo: SloConfig,
        addr: &str,
    ) -> io::Result<Self> {
        let registry = Arc::new(StatementRegistry::new(db, predictor, slo));
        Self::start_with_registry(registry, addr)
    }

    /// Start serving an externally built registry (lets callers pre-register
    /// statements before the first client connects). The dispatch pool is
    /// sized for the host, like `LiveConfig::pool_threads`.
    pub fn start_with_registry(
        registry: Arc<StatementRegistry<S>>,
        addr: &str,
    ) -> io::Result<Self> {
        Self::start_with_dispatch(registry, addr, piql_kv::pool::default_pool_threads())
    }

    /// [`PiqlServer::start_with_registry`] with an explicit dispatch-pool
    /// width — the number of requests the whole server handles
    /// concurrently. `0` degrades every connection to inline (strictly
    /// sequential) handling.
    pub fn start_with_dispatch(
        registry: Arc<StatementRegistry<S>>,
        addr: &str,
        dispatch_threads: usize,
    ) -> io::Result<Self> {
        Self::start_tuned(
            registry,
            addr,
            ServerTuning {
                dispatch_threads,
                max_in_flight_per_conn: 0,
            },
        )
    }

    /// [`PiqlServer::start_with_registry`] with the full [`ServerTuning`]
    /// knob set (dispatch width + per-connection backpressure).
    pub fn start_tuned(
        registry: Arc<StatementRegistry<S>>,
        addr: &str,
        tuning: ServerTuning,
    ) -> io::Result<Self> {
        let max_in_flight = tuning.max_in_flight_per_conn;
        let dispatch = Arc::new(RoundPool::new(tuning.dispatch_threads));
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let streams: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(
            rank::SERVER_STREAMS,
            "server.streams",
            Vec::new(),
        ));
        let accept_thread = {
            let registry = registry.clone();
            let dispatch = dispatch.clone();
            let shutdown = shutdown.clone();
            let connections = connections.clone();
            let streams = streams.clone();
            std::thread::Builder::new()
                .name("piql-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(s) => s,
                            Err(_) => {
                                // transient accept failure (e.g. fd
                                // exhaustion): back off instead of spinning
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                continue;
                            }
                        };
                        connections.fetch_add(1, Ordering::Relaxed);
                        {
                            let mut held = streams.lock();
                            // drop entries whose handler already finished
                            held.retain(|s| s.peer_addr().is_ok());
                            if let Ok(clone) = stream.try_clone() {
                                held.push(clone);
                            }
                        }
                        let registry = registry.clone();
                        let dispatch = dispatch.clone();
                        let _ =
                            std::thread::Builder::new()
                                .name("piql-conn".into())
                                .spawn(move || {
                                    let _ =
                                        serve_connection(stream, registry, dispatch, max_in_flight);
                                });
                    }
                })?
        };
        Ok(PiqlServer {
            registry,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
            streams,
            revalidator: None,
            dispatch,
        })
    }

    /// Start the background [`Revalidator`]: every `period` the registry
    /// folds drained live samples into the models and re-predicts every
    /// registered statement (clients can also force a sweep with the
    /// `revalidate` verb). Idempotent: a second call replaces the period.
    pub fn enable_revalidation(&mut self, period: std::time::Duration) {
        self.revalidator = Some(Revalidator::spawn(self.registry.clone(), period));
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn registry(&self) -> &Arc<StatementRegistry<S>> {
        &self.registry
    }

    /// Connections accepted since start.
    pub fn connection_count(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// The request-handling dispatch pool (for observability; its
    /// `PoolStats` are reporting-only).
    pub fn dispatch_pool(&self) -> &Arc<RoundPool> {
        &self.dispatch
    }
}

impl<S: KvStore + 'static> Drop for PiqlServer<S> {
    fn drop(&mut self) {
        // stop the sweep thread first so no re-validation runs mid-teardown
        self.revalidator = None;
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns and observes the flag.
        // A server bound to an unspecified address (0.0.0.0 / [::]) is not
        // connectable *at* that address, so aim the poke at loopback on
        // the bound port — otherwise the accept thread would only exit on
        // the next real client.
        let poke = if self.local_addr.ip().is_unspecified() {
            let loopback: IpAddr = match self.local_addr.ip() {
                IpAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
                IpAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, self.local_addr.port())
        } else {
            self.local_addr
        };
        let _ = TcpStream::connect(poke);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // close every live connection so handler threads blocked in
        // `lines()` unblock and exit rather than outliving the server
        for stream in self.streams.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// One JSON connection's backpressure window: how many requests are
/// decoded but not yet written back. The reader acquires a slot per frame
/// *before* dispatching it; the writer releases one per response written.
/// Every frame produces exactly one response through the writer (handled,
/// decode-errored, or serial-lane answered), so the accounting balances.
/// When the window is full the reader parks — TCP flow control then
/// pushes back on the client — instead of decoding an unbounded backlog
/// into the dispatch pool.
struct InFlight {
    cap: usize,
    state: Mutex<InFlightState>,
    ready: Condvar,
}

struct InFlightState {
    count: usize,
    /// Set when the writer dies: responses can no longer be delivered, so
    /// a parked reader must wake and stop decoding, not wait forever.
    dead: bool,
}

impl InFlight {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(InFlight {
            cap,
            state: Mutex::new(
                rank::SERVER_INFLIGHT,
                "server.conn.inflight",
                InFlightState {
                    count: 0,
                    dead: false,
                },
            ),
            ready: Condvar::new(),
        })
    }

    /// Reader side: take one slot, parking while the window is full.
    /// Counts one stall per park. Returns `false` when the writer died.
    fn acquire(&self, stalls: &AtomicU64) -> bool {
        let mut state = self.state.lock();
        if state.count >= self.cap && !state.dead {
            stalls.fetch_add(1, Ordering::Relaxed);
            while state.count >= self.cap && !state.dead {
                state = self.ready.wait(state);
            }
        }
        if state.dead {
            return false;
        }
        state.count += 1;
        true
    }

    /// Writer side: one response made it onto the socket.
    fn release(&self) {
        let mut state = self.state.lock();
        state.count = state.count.saturating_sub(1);
        drop(state);
        self.ready.notify_one();
    }

    /// Writer side, on socket error: wake any parked reader for teardown.
    fn poison(&self) {
        self.state.lock().dead = true;
        self.ready.notify_all();
    }
}

/// Shared state of one connection's in-flight requests (the reader, the
/// writer, and every dispatched handler task hold an `Arc` of this).
struct ConnState<S: KvStore> {
    registry: Arc<StatementRegistry<S>>,
    dispatch: Arc<RoundPool>,
    /// Completed responses travel to the writer half over this channel as
    /// `(correlation id, body)` — encoding (and id attachment) is the
    /// writer's [`Wire`]'s job, so the lanes are codec-generic. The writer
    /// exits once every holder of this state is done.
    tx: mpsc::Sender<(Option<RequestId>, Json)>,
    serial: Mutex<SerialLane>,
    /// Sessions for concurrently handled (`id`-carrying) requests: popped
    /// per request, pushed back after, created on demand. Bounded by the
    /// dispatch pool width — a session is only out while its request runs.
    idle_sessions: Mutex<Vec<Session>>,
}

/// Ordered-lane jobs one drainer task runs before re-queueing itself at
/// the back of the dispatch pool — keeps a flooding id-less connection
/// from pinning a server-wide worker indefinitely and starving every
/// other connection.
const SERIAL_DRAIN_BATCH: usize = 32;

/// The id-less lane: jobs run one at a time, in arrival order, on the
/// connection's primary session — exactly the pre-pipelining semantics
/// legacy clients rely on.
struct SerialLane {
    queue: VecDeque<SerialJob>,
    /// Whether a drainer task currently owns the lane.
    draining: bool,
    /// The primary session, taken by the active drainer while it runs a
    /// job so enqueueing never blocks behind an executing query.
    session: Option<Session>,
}

enum SerialJob {
    /// Answer verbatim (parse errors keep their slot in the order).
    Respond(Json),
    Handle(Request),
}

impl<S: KvStore + 'static> ConnState<S> {
    /// Append to the ordered lane, waking a drainer if none owns it.
    fn enqueue_serial(self: &Arc<Self>, job: SerialJob) {
        let start_drainer = {
            let mut lane = self.serial.lock();
            lane.queue.push_back(job);
            if lane.draining {
                false
            } else {
                lane.draining = true;
                true
            }
        };
        if start_drainer {
            let state = self.clone();
            self.dispatch.spawn(move || state.drain_serial());
        }
    }

    /// Run ordered-lane jobs FIFO. At most one drainer owns the lane at a
    /// time (the `draining` flag), so responses are produced — and
    /// therefore written — in arrival order. After [`SERIAL_DRAIN_BATCH`]
    /// jobs the drainer re-queues itself behind other connections' work
    /// instead of pinning its worker until the queue goes empty.
    fn drain_serial(self: &Arc<Self>) {
        for _ in 0..SERIAL_DRAIN_BATCH {
            let (job, mut session) = {
                let mut lane = self.serial.lock();
                match lane.queue.pop_front() {
                    Some(job) => {
                        let Some(session) = lane.session.take() else {
                            // Defensively tolerate a lost lane invariant
                            // (the single drainer owns the session): put
                            // the job back and let the next enqueue
                            // restart the drain, rather than panic the
                            // worker a client request is riding on.
                            lane.queue.push_front(job);
                            lane.draining = false;
                            return;
                        };
                        (job, session)
                    }
                    None => {
                        lane.draining = false;
                        return;
                    }
                }
            };
            let response = match job {
                SerialJob::Respond(json) => json,
                SerialJob::Handle(request) => run_handler(&request, &mut session, &self.registry),
            };
            self.serial.lock().session = Some(session);
            // a send error means the client hung up; keep draining so the
            // lane empties and the state can drop
            let _ = self.tx.send((None, response));
        }
        // batch exhausted with work (possibly) remaining: yield the worker
        // and continue at the back of the dispatch queue. `draining` stays
        // true — this continuation still owns the lane.
        let state = self.clone();
        self.dispatch.spawn(move || state.drain_serial());
    }

    /// Hand an `id`-carrying request to the dispatch pool; its response is
    /// sent whenever it completes, id attached.
    fn dispatch_tagged(self: &Arc<Self>, id: RequestId, request: Request) {
        let state = self.clone();
        self.dispatch.spawn(move || {
            let mut session = state.idle_sessions.lock().pop().unwrap_or_default();
            let response = run_handler(&request, &mut session, &state.registry);
            state.idle_sessions.lock().push(session);
            let _ = state.tx.send((Some(id), response));
        });
    }
}

/// [`handle_request`] with panic containment: a handler panic (an engine
/// bug, not client-reachable input — those answer errors) becomes an
/// error response instead of wedging the connection's lane or killing a
/// pool worker.
fn run_handler<S: KvStore>(
    request: &Request,
    session: &mut Session,
    registry: &StatementRegistry<S>,
) -> Json {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_request(request, session, registry)
    }))
    .unwrap_or_else(|_| err_response("internal error: request handler panicked"))
}

/// Serve one client until EOF. Sniffs the codec from the first byte —
/// [`binary::MAGIC`] starts with `0xB3`, which no JSON line can — then
/// runs the matching loop: the pipelined reader/writer lanes for JSON, the
/// inline [`BinaryConn`] loop for binary.
fn serve_connection<S: KvStore + 'static>(
    stream: TcpStream,
    registry: Arc<StatementRegistry<S>>,
    dispatch: Arc<RoundPool>,
    max_in_flight: usize,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let first = match reader.fill_buf() {
        Ok([]) => return Ok(()), // EOF before the first byte
        Ok(&[first, ..]) => first,
        Err(e) => return Err(e),
    };
    if first == binary::MAGIC[0] {
        let mut magic = [0u8; binary::MAGIC.len()];
        reader.read_exact(&mut magic)?;
        if magic != binary::MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad v3 magic preamble",
            ));
        }
        return serve_binary(reader, write_half, registry);
    }
    serve_lanes(
        reader,
        write_half,
        registry,
        dispatch,
        JsonWire,
        max_in_flight,
    )
}

/// The pipelined reader/writer lanes over any [`Wire`]. Every request
/// frame gets exactly one response frame; protocol errors are answered
/// (not fatal) so a client bug cannot wedge the connection out from under
/// its own pipeline. This thread is the *reader*: it only decodes and
/// dispatches (see the module docs for the lane semantics), then joins
/// the writer — which drains every in-flight response — before returning.
fn serve_lanes<S: KvStore + 'static, W: Wire + Copy + Send + 'static>(
    mut reader: BufReader<TcpStream>,
    write_half: TcpStream,
    registry: Arc<StatementRegistry<S>>,
    dispatch: Arc<RoundPool>,
    wire: W,
    max_in_flight: usize,
) -> io::Result<()> {
    let (tx, rx) = mpsc::channel::<(Option<RequestId>, Json)>();
    let alive = Arc::new(AtomicBool::new(true));
    // cap 0 = unlimited: no window is even allocated, the lanes behave
    // exactly as before the backpressure control existed
    let inflight = (max_in_flight > 0).then(|| InFlight::new(max_in_flight));
    let writer_thread = {
        let alive = alive.clone();
        let inflight = inflight.clone();
        std::thread::Builder::new()
            .name("piql-conn-writer".into())
            .spawn(move || write_loop(write_half, rx, &alive, wire, inflight))?
    };
    let state = Arc::new(ConnState {
        registry,
        dispatch,
        tx,
        serial: Mutex::new(
            rank::SERVER_SERIAL,
            "server.conn.serial",
            SerialLane {
                queue: VecDeque::new(),
                draining: false,
                session: Some(Session::new()),
            },
        ),
        idle_sessions: Mutex::new(rank::SERVER_IDLE_SESSIONS, "server.conn.idle", Vec::new()),
    });
    let read_result: io::Result<()> = (|| {
        let mut frame = Vec::new();
        while wire.read_frame(&mut reader, &mut frame)? {
            // the writer hit a socket error: responses can no longer be
            // delivered, so stop decoding (and executing) requests
            if !alive.load(Ordering::Relaxed) {
                break;
            }
            // backpressure: park until the in-flight window has room (a
            // full window means the client outran the server — TCP stops
            // reading new bytes while we park, pushing back upstream)
            if let Some(window) = &inflight {
                if !window.acquire(&state.registry.counters.backpressure_stalls) {
                    break;
                }
            }
            match wire.decode_envelope(&frame) {
                Ok(Envelope {
                    id: Some(id),
                    request,
                }) => state.dispatch_tagged(id, request),
                Ok(Envelope { id: None, request }) => {
                    state.enqueue_serial(SerialJob::Handle(request))
                }
                Err(e) => {
                    let response = err_response(e.to_string());
                    match wire.extract_id(&frame) {
                        // a correlatable error answers like any tagged
                        // completion; uncorrelatable ones keep their slot
                        // in the ordered lane
                        Some(id) => {
                            let _ = state.tx.send((Some(id), response));
                        }
                        None => state.enqueue_serial(SerialJob::Respond(response)),
                    }
                }
            }
        }
        Ok(())
    })();
    // the writer exits once the last sender drops — i.e. after every
    // dispatched task for this connection has completed and answered
    drop(state);
    let _ = writer_thread.join();
    read_result
}

/// The writer half: serialize responses in the order they complete,
/// flushing only when nothing further is immediately ready — a pipelined
/// burst coalesces into few flush syscalls instead of one per response.
/// One scratch buffer is reused across responses. A socket error clears
/// `alive` so the reader stops accepting work whose results would be
/// discarded.
fn write_loop<W: Wire>(
    stream: TcpStream,
    rx: mpsc::Receiver<(Option<RequestId>, Json)>,
    alive: &AtomicBool,
    wire: W,
    inflight: Option<Arc<InFlight>>,
) {
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    let write_one = |writer: &mut BufWriter<TcpStream>,
                     buf: &mut Vec<u8>,
                     (id, response): (Option<RequestId>, Json)|
     -> io::Result<()> {
        buf.clear();
        wire.encode_response(id.as_ref(), &response, buf);
        writer.write_all(buf)
    };
    // every response written releases one backpressure slot, even when it
    // only reached the BufWriter: the bytes are out of the server's
    // request pipeline either way
    let release = |inflight: &Option<Arc<InFlight>>| {
        if let Some(window) = inflight {
            window.release();
        }
    };
    while let Ok(completed) = rx.recv() {
        let mut io = write_one(&mut writer, &mut buf, completed);
        if io.is_ok() {
            release(&inflight);
        }
        while io.is_ok() {
            match rx.try_recv() {
                Ok(next) => {
                    io = write_one(&mut writer, &mut buf, next);
                    if io.is_ok() {
                        release(&inflight);
                    }
                }
                Err(_) => break,
            }
        }
        if io.and_then(|()| writer.flush()).is_err() {
            alive.store(false, Ordering::Relaxed);
            // a reader parked on a full window must wake up and exit, not
            // wait for releases that will never come
            if let Some(window) = &inflight {
                window.poison();
            }
            return;
        }
    }
}

/// Whether `buffered` (the reader's lookahead bytes) already holds one
/// complete binary frame — if so, the serve loop handles it before
/// flushing pending output, so a pipelined burst answers in one write.
fn complete_frame_buffered(buffered: &[u8]) -> bool {
    match buffered.first_chunk::<4>() {
        Some(len) => {
            let len = u32::from_le_bytes(*len) as usize;
            len <= binary::MAX_FRAME && buffered.len() - 4 >= len
        }
        None => false,
    }
}

/// The binary (v3) connection loop: one strictly ordered lane, run inline
/// on the connection's own thread (no writer thread, no dispatch hop —
/// the per-request overhead the hot path exists to avoid). Responses
/// accumulate in the conn's output buffer and flush right before a read
/// would block.
fn serve_binary<S: KvStore + 'static>(
    mut reader: BufReader<TcpStream>,
    mut write_half: TcpStream,
    registry: Arc<StatementRegistry<S>>,
) -> io::Result<()> {
    let mut hello = Vec::new();
    binary::put_hello(&mut hello);
    write_half.write_all(&hello)?;
    let wire = BinaryWire;
    let mut conn = BinaryConn::new(registry);
    let mut frame = Vec::new();
    loop {
        if !conn.output().is_empty() && !complete_frame_buffered(reader.buffer()) {
            write_half.write_all(conn.output())?;
            conn.clear_output();
        }
        if !wire.read_frame(&mut reader, &mut frame)? {
            break;
        }
        conn.handle_frame(&frame);
    }
    if !conn.output().is_empty() {
        write_half.write_all(conn.output())?;
    }
    Ok(())
}

/// One binary (v3) connection's request handler: decode → route → respond
/// into per-connection scratch buffers.
///
/// For a registered statement whose plan qualifies as a
/// [`FastPointPlan`](crate::registry::FastPointPlan) — a full-primary-key
/// equality lookup — `handle_frame` runs the **allocation-free** path:
/// the probe key is encoded from frame-borrowed parameter values, the
/// store answers through `KvStore::point_get` into a reused value buffer,
/// and the stored row is transcoded straight onto the wire. The emitted
/// frame is byte-identical to the general path's, and *any* irregularity
/// (unknown statement, collection params, explicit cursor, trailing
/// bytes, unsupported backend, corrupt row) rewinds the output and reruns
/// the frame through the general decode → [`handle_request`] → encode
/// path, which defines the behavior.
pub struct BinaryConn<S: KvStore + 'static> {
    registry: Arc<StatementRegistry<S>>,
    session: Session,
    /// Encoded response frames not yet handed to the socket.
    out: Vec<u8>,
    /// Probe-key scratch.
    key_buf: Vec<u8>,
    /// Stored-row scratch (`point_get` appends here).
    val_buf: Vec<u8>,
    /// Byte offsets (into the request payload) of each scalar parameter's
    /// tagged value, re-scanned per fast-path attempt.
    param_offsets: Vec<usize>,
}

impl<S: KvStore + 'static> BinaryConn<S> {
    pub fn new(registry: Arc<StatementRegistry<S>>) -> Self {
        BinaryConn {
            registry,
            session: Session::new(),
            out: Vec::new(),
            key_buf: Vec::new(),
            val_buf: Vec::new(),
            param_offsets: Vec::new(),
        }
    }

    /// Encoded-but-unflushed response bytes.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Discard flushed output (capacity is kept).
    pub fn clear_output(&mut self) {
        self.out.clear();
    }

    /// Handle one request frame (the bytes after the length prefix),
    /// appending exactly one response frame to [`BinaryConn::output`].
    pub fn handle_frame(&mut self, frame: &[u8]) {
        let mark = self.out.len();
        if self.try_fast_point(frame).is_none() {
            self.out.truncate(mark);
            self.handle_general(frame);
        }
    }

    /// The zero-allocation point-read path. `None` means "not taken" (for
    /// whatever reason) — the caller rewinds and runs the general path.
    fn try_fast_point(&mut self, frame: &[u8]) -> Option<()> {
        let (opcode, raw_id, payload) = binary::split_frame(frame).ok()?;
        if opcode != OP_EXECUTE {
            return None;
        }
        let mut cur = binary::Cur::new(payload);
        let name = cur.str().ok()?;
        let statement = self.registry.get(name)?;
        let plan = statement.fast_point()?;
        // a budget-limited tenant goes through the governed general path
        // (permits, shed plans, coded rejections); only the unlimited
        // default keeps the zero-allocation shortcut
        if !statement.budget().is_unlimited() {
            return None;
        }
        // counts the admission; on the unlimited path this is two atomic
        // ops and allocates nothing
        let _permit = match statement.budget().admit() {
            BudgetDecision::Go(permit) => permit,
            _ => return None,
        };
        if !binary::scan_scalar_params(&mut cur, &mut self.param_offsets).ok()? {
            return None;
        }
        if cur.u8().ok()? != 0 {
            return None; // explicit cursor: not a point read
        }
        cur.done().ok()?;

        // probe key: plan constants + frame-borrowed parameter values,
        // through the same component codec the scan path probes with
        self.key_buf.clear();
        for part in &plan.parts {
            let value = match part {
                FastKeyPart::Const(v) => piql_core::value::ValueRef::of(v),
                FastKeyPart::Param(i) => {
                    let off = *self.param_offsets.get(*i)?;
                    binary::read_value_ref(&mut binary::Cur::new(&payload[off..])).ok()?
                }
            };
            encode_component_ref(&mut self.key_buf, value, Dir::Asc).ok()?;
        }

        let store = self.registry.db().store();
        store.sync_session(&mut self.session);
        let start = self.session.begin();
        // same op tag the general plan's scan would carry, so the live
        // model trains on fast-path samples identically
        self.session.op_tag = Some(OpTag {
            op: LiveOpKind::IndexScan,
            alpha_c: plan.alpha_c,
            alpha_j: 1,
            beta: plan.beta,
        });
        self.val_buf.clear();
        let found = store.point_get(&mut self.session, plan.ns, &self.key_buf, &mut self.val_buf);
        self.session.op_tag = None;
        // a backend without a fast get: fall back (nothing was accounted)
        let found = found?;

        let fmark = binary::begin_frame(&mut self.out);
        self.out.push(OP_RESPONSE);
        self.out.extend_from_slice(raw_id);
        if found {
            let (mut row, arity) = RowReader::new(&self.val_buf).ok()?;
            if arity != plan.arity {
                return None;
            }
            binary::put_fast_ok_header(&mut self.out, 1);
            binary::put_row_header(&mut self.out, arity as u32);
            for _ in 0..arity {
                binary::put_row_value(&mut self.out, row.next_value().ok()?);
            }
            row.finish().ok()?;
        } else {
            binary::put_fast_ok_header(&mut self.out, 0);
        }
        binary::finish_frame(&mut self.out, fmark);

        let latency = self.session.elapsed_since(start);
        statement.executions.fetch_add(1, Ordering::Relaxed);
        statement
            .metrics
            .lock()
            .record(start, latency, statement.kind.index());
        let counters = &self.registry.counters;
        counters.executed.fetch_add(1, Ordering::Relaxed);
        counters.fast_point_reads.fetch_add(1, Ordering::Relaxed);
        Some(())
    }

    /// The general path: full decode → the shared request router → generic
    /// encode. Mirrors the JSON lane's malformed-input rule — a decode
    /// error is answered (echoing the header id when it parses) and the
    /// stream stays alive.
    fn handle_general(&mut self, frame: &[u8]) {
        let wire = BinaryWire;
        match wire.decode_envelope(frame) {
            Ok(env) => {
                let response = run_handler(&env.request, &mut self.session, &self.registry);
                wire.encode_response(env.id.as_ref(), &response, &mut self.out);
            }
            Err(e) => {
                let id = wire.extract_id(frame);
                wire.encode_response(id.as_ref(), &err_response(e.to_string()), &mut self.out);
            }
        }
    }
}

/// Dispatch one request line to a response object (ignoring any `id` —
/// embedders doing their own transport handle correlation themselves).
pub fn handle_line<S: KvStore>(
    line: &str,
    session: &mut Session,
    registry: &StatementRegistry<S>,
) -> Json {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return err_response(e.to_string()),
    };
    handle_request(&request, session, registry)
}

/// Answer one parsed [`Request`] on `session`. Batches recurse: each
/// sub-request is answered in place, sequentially on the same session
/// (so a `dml` is visible to the `execute` after it), and a sub-error
/// becomes an `{"ok":false,...}` entry instead of aborting the rest.
pub fn handle_request<S: KvStore>(
    request: &Request,
    session: &mut Session,
    registry: &StatementRegistry<S>,
) -> Json {
    match request {
        Request::Prepare { name, sql } => match registry.register(name, sql) {
            Ok(admission) => {
                let mut fields = vec![("status", Json::str(admission.verdict()))];
                match &admission {
                    Admission::Admitted { predicted_p99_ms } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                    }
                    Admission::Degraded {
                        predicted_p99_ms,
                        original_limit,
                        limit,
                    } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                        fields.push(("original_limit", Json::Int(*original_limit as i64)));
                        fields.push(("limit", Json::Int(*limit as i64)));
                    }
                    Admission::RejectedSlo { predicted_p99_ms } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                    }
                    Admission::RejectedUnbounded { report } => {
                        // the legacy flat string, plus the structured
                        // diagnosis (problem / relation / suggestions) the
                        // Insight Assistant computed all along — clients no
                        // longer have to screen-scrape the report text
                        fields.push(("report", Json::str(report.to_string())));
                        fields.push(("problem", Json::str(report.problem.clone())));
                        fields.push((
                            "relation",
                            match &report.relation {
                                Some(rel) => Json::str(rel.clone()),
                                None => Json::Null,
                            },
                        ));
                        fields.push((
                            "suggestions",
                            Json::Arr(
                                report
                                    .suggestions
                                    .iter()
                                    .map(|s| Json::str(s.to_string()))
                                    .collect(),
                            ),
                        ));
                    }
                    // registration never flags (flags come from sweeps)
                    Admission::Flagged {
                        predicted_p99_ms,
                        diagnostics,
                    } => {
                        fields.push(("predicted_p99_ms", Json::Float(*predicted_p99_ms)));
                        fields.push(("diagnostics", diagnostics_to_json(diagnostics)));
                    }
                }
                if admission.is_admitted() {
                    // Admission and this lookup are not atomic: a rival
                    // prepare of the same name that lands on a rejection
                    // path uninstalls the entry (see `register`), so the
                    // statement can already be gone. That is an answerable
                    // race, not a panic a client gets to trigger.
                    let Some(statement) = registry.get(name) else {
                        return err_response(format!(
                            "statement '{name}' was removed by a concurrent prepare/unprepare"
                        ));
                    };
                    let prepared = statement.prepared();
                    fields.push((
                        "columns",
                        Json::Arr(
                            prepared
                                .columns
                                .iter()
                                .map(|c| Json::str(c.clone()))
                                .collect(),
                        ),
                    ));
                    let bounds = &prepared.compiled.bounds;
                    fields.push((
                        "bounds",
                        Json::obj([
                            ("requests", Json::Int(bounds.requests as i64)),
                            ("rounds", Json::Int(bounds.rounds as i64)),
                            ("tuples", Json::Int(bounds.tuples as i64)),
                        ]),
                    ));
                }
                ok_response(fields)
            }
            Err(e) => err_response(e.to_string()),
        },
        Request::Execute {
            name,
            params,
            cursor,
        } => run_execute(session, registry, name, params, cursor.as_ref()),
        Request::CursorNext {
            name,
            params,
            cursor,
        } => run_execute(session, registry, name, params, Some(cursor)),
        Request::Dml { sql, params } => {
            let p = build_params(params);
            match registry.execute_dml(session, sql, &p) {
                // a dead WAL voids the durability guarantee: the write
                // applied in memory, but acknowledging it as a success
                // would silently promise durability the store can no
                // longer provide — answer an error the client can see
                // (the `stats` durability block reports `wal_dead` too)
                Ok(()) if registry.db().cluster().wal_degraded() => err_response(
                    "write-ahead log has failed: the write applied in memory but is not durable",
                ),
                Ok(()) => ok_response([]),
                Err(e) => err_response(e.to_string()),
            }
        }
        Request::Stats => stats_response(registry),
        Request::Revalidate => {
            let summary = registry.revalidate();
            ok_response([
                ("sweep", Json::Int(summary.sweep as i64)),
                ("samples_folded", Json::Int(summary.samples_folded as i64)),
                ("models_rotated", Json::Bool(summary.models_rotated)),
                ("statements", Json::Int(summary.statements as i64)),
                ("steady", Json::Int(summary.steady as i64)),
                ("redegraded", Json::Int(summary.redegraded as i64)),
                ("relaxed", Json::Int(summary.relaxed as i64)),
                ("flagged", Json::Int(summary.flagged as i64)),
                ("recovered", Json::Int(summary.recovered as i64)),
            ])
        }
        Request::Rebalance => {
            let balance = registry.rebalance();
            ok_response([
                (
                    "rebalances",
                    Json::Int(registry.counters.rebalances.load(Ordering::Relaxed) as i64),
                ),
                ("shard_balance", balance_to_json(&balance)),
            ])
        }
        Request::Snapshot => match registry.durability() {
            Some(control) => match control.checkpoint() {
                Ok(summary) => ok_response([
                    ("generation", Json::Int(summary.generation as i64)),
                    ("entries", Json::Int(summary.entries as i64)),
                    ("bytes", Json::Int(summary.bytes as i64)),
                    (
                        "compacted_wal_bytes",
                        Json::Int(summary.compacted_wal_bytes as i64),
                    ),
                    ("duration_ms", Json::Float(summary.duration_ms)),
                ]),
                Err(e) => err_response(format!("snapshot failed: {e}")),
            },
            None => err_response("durability is not enabled on this server"),
        },
        Request::Explain { name, sql } => {
            explain_response(registry, name.as_deref(), sql.as_deref())
        }
        Request::Batch { requests } => {
            let results: Vec<Json> = requests
                .iter()
                .map(|sub| handle_request(sub, session, registry))
                .collect();
            ok_response([("results", Json::Arr(results))])
        }
    }
}

/// The `explain` verb: run the static auditor over a prepared statement
/// (by `name`, auditing the plan *as currently installed* — degraded
/// bounds and all) or a candidate statement (by `sql`, compiled against
/// the catalog without registering anything), under the server's SLO.
/// Pure analysis: no storage operation is issued either way.
fn explain_response<S: KvStore>(
    registry: &StatementRegistry<S>,
    name: Option<&str>,
    sql: Option<&str>,
) -> Json {
    let predictor = registry.models().predictor();
    let slo = piql_audit::SloSpec {
        slo_ms: registry.slo().slo_ms,
        confidence: registry.slo().interval_confidence,
    };
    let audit = match (name, sql) {
        (Some(name), None) => {
            let Some(statement) = registry.get(name) else {
                return err_response(format!("unknown statement '{name}' (prepare it first)"));
            };
            let prepared = statement.prepared();
            piql_audit::audit_compiled(&predictor, name, &statement.sql, &prepared.compiled, slo)
        }
        (None, Some(sql)) => {
            let catalog = registry.db().catalog();
            piql_audit::audit_statement(&catalog, &predictor, "candidate", sql, slo)
        }
        // the codecs reject these shapes at decode time; embedders calling
        // `handle_request` directly still get an answer, not a panic
        _ => return err_response("explain requires exactly one of 'name' or 'sql'"),
    };
    ok_response([("explain", audit_to_json(&audit.to_json()))])
}

/// Re-parse an audit-crate JSON rendering into the server's [`Json`] tree
/// — the audit report shape has exactly one source of truth (the audit
/// crate), and both codecs encode the same tree from it. The audit
/// crate's renderer emits strict JSON, so the parse is total in practice;
/// a failure degrades to `Null` rather than panicking on the request path.
fn audit_to_json(doc: &piql_audit::JsonVal) -> Json {
    crate::json::parse(&doc.to_string()).unwrap_or(Json::Null)
}

/// Structured auditor diagnostics as a wire array (`prepare` responses for
/// flagged re-registrations and the per-statement `stats` block).
fn diagnostics_to_json(diagnostics: &[piql_audit::Diagnostic]) -> Json {
    Json::Arr(
        diagnostics
            .iter()
            .map(|d| audit_to_json(&d.to_json()))
            .collect(),
    )
}

/// The `durability` object of a `stats` response (PROTOCOL.md §4.6).
fn durability_to_json(health: &piql_durability::DurabilityHealth) -> Json {
    let r = &health.recovery;
    Json::obj([
        ("generation", Json::Int(health.generation as i64)),
        ("policy", Json::str(health.policy)),
        ("wal_dead", Json::Bool(health.dead)),
        ("wal_bytes", Json::Int(health.wal_bytes as i64)),
        ("wal_records", Json::Int(health.wal_records as i64)),
        ("commits", Json::Int(health.commits as i64)),
        ("fsyncs", Json::Int(health.fsyncs as i64)),
        (
            "last_snapshot_age_ms",
            match health.last_snapshot_age_ms {
                Some(ms) => Json::Int(ms as i64),
                None => Json::Null,
            },
        ),
        (
            "recovery",
            Json::obj([
                ("snapshot_loaded", Json::Bool(r.snapshot_loaded)),
                ("snapshot_entries", Json::Int(r.snapshot_entries as i64)),
                ("wal_records", Json::Int(r.wal_records as i64)),
                ("wal_tail", Json::str(r.wal_tail.clone())),
                ("truncated_bytes", Json::Int(r.truncated_bytes as i64)),
                ("statements", Json::Int(r.statements as i64)),
                ("ddl", Json::Int(r.ddl as i64)),
                ("duration_ms", Json::Float(r.duration_ms)),
            ]),
        ),
    ])
}

/// Per-namespace shard balance as the wire object (`stats` and the
/// `rebalance` verb both ship it).
fn balance_to_json(balance: &[NsBalance]) -> Json {
    Json::Arr(
        balance
            .iter()
            .map(|b| {
                Json::obj([
                    ("namespace", Json::str(b.name.clone())),
                    ("shards", Json::Int(b.shards as i64)),
                    ("entries", Json::Int(b.total_entries() as i64)),
                    ("max_entry_share", Json::Float(b.max_entry_share())),
                    ("max_op_share", Json::Float(b.max_op_share())),
                ])
            })
            .collect(),
    )
}

/// The `overload` object of a `stats` response (PROTOCOL.md §4.6):
/// service-wide overload-control counters plus one entry per tenant
/// budget the registry has materialized.
fn overload_to_json<S: KvStore>(registry: &StatementRegistry<S>) -> Json {
    let c = &registry.counters;
    let tenants: Vec<Json> = registry
        .tenant_budgets()
        .iter()
        .map(|budget| {
            let snap = budget.snapshot();
            Json::obj([
                ("tenant", Json::str(snap.tenant)),
                (
                    "capacity",
                    match snap.capacity {
                        Some(cap) => Json::Int(cap as i64),
                        None => Json::Null,
                    },
                ),
                ("policy", Json::str(snap.policy)),
                ("in_flight", Json::Int(snap.in_flight as i64)),
                ("admitted", Json::Int(snap.admitted as i64)),
                ("rejected", Json::Int(snap.rejected as i64)),
                ("queued", Json::Int(snap.queued as i64)),
                ("queue_timeouts", Json::Int(snap.queue_timeouts as i64)),
                ("shed", Json::Int(snap.shed as i64)),
            ])
        })
        .collect();
    Json::obj([
        (
            "backpressure_stalls",
            Json::Int(c.backpressure_stalls.load(Ordering::Relaxed) as i64),
        ),
        (
            "budget_rejected",
            Json::Int(c.budget_rejected.load(Ordering::Relaxed) as i64),
        ),
        (
            "budget_shed",
            Json::Int(c.budget_shed.load(Ordering::Relaxed) as i64),
        ),
        (
            "auto_rebalances",
            Json::Int(c.auto_rebalances.load(Ordering::Relaxed) as i64),
        ),
        ("tenants", Json::Arr(tenants)),
    ])
}

fn build_params(values: &[piql_core::plan::params::ParamValue]) -> Params {
    let mut p = Params::new();
    for (i, v) in values.iter().enumerate() {
        p.set(i, v.clone());
    }
    p
}

fn run_execute<S: KvStore>(
    session: &mut Session,
    registry: &StatementRegistry<S>,
    name: &str,
    params: &[piql_core::plan::params::ParamValue],
    cursor: Option<&piql_engine::Cursor>,
) -> Json {
    let p = build_params(params);
    match registry.execute_governed(session, name, &p, cursor) {
        Ok(outcome) => {
            let mut fields = vec![
                (
                    "rows",
                    Json::Arr(
                        outcome
                            .result
                            .rows
                            .iter()
                            .map(|t| row_to_json(t.values()))
                            .collect(),
                    ),
                ),
                ("cursor", cursor_to_json(&outcome.result.cursor)),
            ];
            // a shed admission served the degraded plan: tell the client
            // its result was truncated by overload control
            if outcome.shed {
                fields.push(("degraded", Json::Bool(true)));
            }
            ok_response(fields)
        }
        Err(RegistryError::BudgetExceeded { tenant }) => budget_exceeded_response(&tenant),
        Err(e) => err_response(e.to_string()),
    }
}

/// Drift intervals shipped per statement in a `stats` reply. The registry
/// retains more; capping the wire copy keeps `stats` cost flat no matter
/// how many sweeps a long-lived server has run (pinned by a test).
const STATS_DRIFT_INTERVALS: usize = 8;

fn stats_response<S: KvStore>(registry: &StatementRegistry<S>) -> Json {
    let c = &registry.counters;
    let durability = registry
        .durability()
        .map(|d| durability_to_json(&d.health()));
    let statements: Vec<Json> = registry
        .list()
        .iter()
        .map(|s| {
            let admission = s.admission();
            let mut fields = vec![
                ("name", Json::str(s.name.clone())),
                ("status", Json::str(admission.verdict())),
                ("kind", Json::str(s.kind_name())),
                (
                    "executions",
                    Json::Int(s.executions.load(Ordering::Relaxed) as i64),
                ),
                // observed quantiles next to the refreshed prediction: the
                // pair the feedback loop exists to keep honest
                ("p50_ms", Json::Float(s.quantile_ms(0.5))),
                ("p99_ms", Json::Float(s.quantile_ms(0.99))),
                ("predicted_p99_ms", Json::Float(s.last_predicted_p99_ms())),
            ];
            if let Admission::Degraded {
                original_limit,
                limit,
                ..
            } = &admission
            {
                fields.push(("original_limit", Json::Int(*original_limit as i64)));
                fields.push(("limit", Json::Int(*limit as i64)));
            }
            // a flagged statement ships the auditor's structured
            // explanation of the violation, not just the number
            if let Admission::Flagged { diagnostics, .. } = &admission {
                if !diagnostics.is_empty() {
                    fields.push(("diagnostics", diagnostics_to_json(diagnostics)));
                }
            }
            let drift = s.recent_drift(STATS_DRIFT_INTERVALS);
            if !drift.is_empty() {
                fields.push((
                    "drift",
                    Json::Arr(
                        drift
                            .iter()
                            .map(|d| {
                                Json::obj([
                                    ("sweep", Json::Int(d.sweep as i64)),
                                    ("predicted_p99_ms", Json::Float(d.predicted_p99_ms)),
                                    ("action", Json::str(d.action.name())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    let mut response = ok_response([
        (
            "admitted",
            Json::Int(c.admitted.load(Ordering::Relaxed) as i64),
        ),
        (
            "degraded",
            Json::Int(c.degraded.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected_slo",
            Json::Int(c.rejected_slo.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected_unbounded",
            Json::Int(c.rejected_unbounded.load(Ordering::Relaxed) as i64),
        ),
        (
            "executed",
            Json::Int(c.executed.load(Ordering::Relaxed) as i64),
        ),
        (
            "fast_point_reads",
            Json::Int(c.fast_point_reads.load(Ordering::Relaxed) as i64),
        ),
        (
            "exec_errors",
            Json::Int(c.exec_errors.load(Ordering::Relaxed) as i64),
        ),
        (
            "revalidations",
            Json::Int(c.revalidations.load(Ordering::Relaxed) as i64),
        ),
        (
            "samples_folded",
            Json::Int(c.samples_folded.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_redegraded",
            Json::Int(c.drift_redegraded.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_relaxed",
            Json::Int(c.drift_relaxed.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_flagged",
            Json::Int(c.drift_flagged.load(Ordering::Relaxed) as i64),
        ),
        (
            "drift_recovered",
            Json::Int(c.drift_recovered.load(Ordering::Relaxed) as i64),
        ),
        (
            "rebalances",
            Json::Int(c.rebalances.load(Ordering::Relaxed) as i64),
        ),
        (
            "shard_balance",
            balance_to_json(&registry.db().cluster().balance()),
        ),
        ("overload", overload_to_json(registry)),
        ("slo_ms", Json::Float(registry.slo().slo_ms)),
        ("statements", Json::Arr(statements)),
    ]);
    // the durability health block only exists on durable stacks — its
    // absence is how a client tells an in-memory server apart
    if let (Json::Obj(m), Some(d)) = (&mut response, durability) {
        m.insert("durability".into(), d);
    }
    response
}
