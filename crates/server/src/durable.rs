//! The durable serving stack: a [`LiveCluster`] + [`StatementRegistry`]
//! whose full state — data, DDL, prepared statements, and live-trained
//! latency models — survives a `kill -9`.
//!
//! [`open_durable`] is the one entry point. It recovers whatever a
//! previous process left in the data directory and wires the running
//! stack so everything that matters keeps being journaled:
//!
//! 1. **Read** the snapshot + WAL tail ([`Durability::open`] — no side
//!    effects yet).
//! 2. **Bootstrap**: the embedder's boot-time schema/seed closure runs
//!    against the fresh store, *unlogged*. It must be deterministic —
//!    create the same namespaces in the same order every boot (replay
//!    verifies the recorded namespace ids and fails loudly on drift).
//! 3. **Replay KV**: snapshot namespaces are cleared and reloaded (so
//!    rows deleted before the snapshot stay deleted even if the bootstrap
//!    re-seeded them), then the WAL tail reapplies in append order.
//! 4. **Replay DDL** through the engine, which re-derives catalog state
//!    and backfills indexes idempotently from the recovered rows.
//! 5. **Recover models**: the snapshot's model checkpoint (or the seed
//!    predictor when there is none) with every journaled rotation folded
//!    on top — the exact fold sequence the original process performed.
//! 6. **Re-register statements** against the *recovered* models: every
//!    surviving statement goes through full admission again, so a
//!    statement whose models drifted over the SLO while the server was
//!    down is re-degraded or dropped at boot, not at first execution.
//! 7. **Attach**: the WAL becomes the cluster's write-ahead sink, the
//!    model store's rotation observer journals every future rotation, and
//!    the registry's journal records every future (un)registration.
//!
//! After step 7 an acknowledged write is a durable write: the cluster
//! appends under the shard write lock and blocks acknowledgement on the
//! group-commit watermark.

use crate::registry::{DurabilityControl, SloConfig, StatementJournal, StatementRegistry};
use piql_durability::{
    Durability, DurabilityConfig, DurabilityHealth, RecoveryReport, SnapshotInputs,
    SnapshotSummary, SyncPolicy,
};
use piql_engine::{Database, DbError};
use piql_kv::{LiveCluster, LiveConfig};
use piql_predict::{SharedModelStore, SloPredictor};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Options for [`open_durable`].
pub struct DurableOptions {
    /// The data directory (created if missing).
    pub data_dir: PathBuf,
    /// `GroupCommit` (default) or `SyncEach`.
    pub policy: SyncPolicy,
    /// WAL-size threshold at which the [`SnapshotDaemon`] checkpoints.
    pub snapshot_wal_bytes: u64,
    pub live: LiveConfig,
    pub slo: SloConfig,
}

impl DurableOptions {
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            data_dir: data_dir.into(),
            policy: SyncPolicy::GroupCommit,
            snapshot_wal_bytes: 64 << 20,
            live: LiveConfig::default(),
            slo: SloConfig::default(),
        }
    }
}

/// What happened to one recovered statement at boot-time re-admission.
#[derive(Debug, Clone)]
pub struct Readmission {
    pub name: String,
    /// The re-admission verdict (`"admitted"`, `"degraded"`, ... or
    /// `"error"` if the recovered SQL no longer registers cleanly).
    pub verdict: String,
}

/// A fully wired durable serving stack.
pub struct DurableStack {
    pub cluster: Arc<LiveCluster>,
    pub db: Arc<Database<LiveCluster>>,
    pub registry: Arc<StatementRegistry<LiveCluster>>,
    pub models: Arc<SharedModelStore>,
    pub durability: Arc<Durability>,
    /// What recovery found (also surfaced in `stats`).
    pub report: RecoveryReport,
    /// Boot-time re-admission outcome per recovered statement.
    pub readmissions: Vec<Readmission>,
}

impl DurableStack {
    /// Execute DDL through the durable stack: applied, then journaled.
    /// Use this (not `db.execute_ddl`) for any runtime schema change that
    /// must survive a restart; boot-time bootstrap DDL stays unlogged
    /// because the bootstrap closure re-runs it every boot.
    pub fn execute_ddl(&self, sql: &str) -> Result<(), DbError> {
        self.db.execute_ddl(sql)?;
        self.durability.log_ddl(sql);
        Ok(())
    }

    /// Take a checkpoint now: rotate the WAL, export the full state, and
    /// compact the log behind it.
    pub fn snapshot(&self) -> io::Result<SnapshotSummary> {
        let cluster = self.cluster.clone();
        let models = self.models.clone();
        self.durability.snapshot_with(move || {
            // reads happen after the WAL rotation (snapshot_with invokes
            // this closure post-rotation), which is what makes the fuzzy
            // snapshot + tail-replay combination converge
            let (store, rotations) = models.snapshot_with_rotations();
            SnapshotInputs {
                namespaces: cluster.export_namespaces(),
                models: Some((rotations, store.interval_maps().to_vec())),
            }
        })
    }

    /// Crash simulation for tests: discard buffered (unacknowledged)
    /// records and kill the log, as a `kill -9` would. The in-memory
    /// stack keeps running but nothing further becomes durable.
    pub fn simulate_crash(&self) {
        self.durability.simulate_crash();
    }

    /// Graceful shutdown: flush the WAL and stop the committer.
    pub fn close(&self) {
        self.models.set_rotation_observer(None);
        self.registry.set_journal(None);
        self.cluster.detach_wal();
        self.durability.close();
    }
}

/// The [`DurabilityControl`] the registry hands to `stats`/`snapshot`.
struct StackControl {
    cluster: Arc<LiveCluster>,
    models: Arc<SharedModelStore>,
    durability: Arc<Durability>,
}

impl DurabilityControl for StackControl {
    fn health(&self) -> DurabilityHealth {
        self.durability.health()
    }

    fn checkpoint(&self) -> io::Result<SnapshotSummary> {
        let cluster = self.cluster.clone();
        let models = self.models.clone();
        self.durability.snapshot_with(move || {
            let (store, rotations) = models.snapshot_with_rotations();
            SnapshotInputs {
                namespaces: cluster.export_namespaces(),
                models: Some((rotations, store.interval_maps().to_vec())),
            }
        })
    }
}

impl StatementJournal for Durability {
    fn upserted(&self, name: &str, sql: &str) {
        self.log_statement_upsert(name, sql);
    }

    fn dropped(&self, name: &str) {
        self.log_statement_drop(name);
    }
}

/// Open (or create) a durable stack at `opts.data_dir`. `seed` provides
/// the models used on a first boot (and beneath any checkpoint-free
/// recovery); `bootstrap` is the embedder's deterministic boot-time
/// schema/seed routine (see the module docs for the ordering contract).
pub fn open_durable(
    opts: DurableOptions,
    seed: SloPredictor,
    bootstrap: impl FnOnce(&Arc<Database<LiveCluster>>) -> Result<(), DbError>,
) -> io::Result<DurableStack> {
    let (recovered, durability) = Durability::open(DurabilityConfig {
        dir: opts.data_dir,
        policy: opts.policy,
        snapshot_wal_bytes: opts.snapshot_wal_bytes,
    })?;

    let cluster = Arc::new(LiveCluster::new(opts.live));
    let db = Arc::new(Database::new(cluster.clone()));
    bootstrap(&db).map_err(|e| io::Error::other(format!("bootstrap failed: {e}")))?;
    recovered.apply_kv(&cluster)?;
    for sql in &recovered.ddl {
        db.execute_ddl(sql)
            .map_err(|e| io::Error::other(format!("replaying logged DDL '{sql}': {e}")))?;
    }

    let models = Arc::new(SharedModelStore::new(
        recovered.models((*seed.models).clone()),
    ));
    let registry = Arc::new(StatementRegistry::with_models(
        db.clone(),
        models.clone(),
        opts.slo,
    ));

    // Re-admission: every recovered statement goes through full admission
    // against the recovered models. The journal is not installed yet, so
    // surviving statements are not re-upserted (their records are already
    // in the mirror); ones that no longer pass are dropped explicitly.
    let mut readmissions = Vec::with_capacity(recovered.statements.len());
    for (name, sql) in &recovered.statements {
        let verdict = match registry.register(name, sql) {
            Ok(admission) => {
                if !admission.is_admitted() {
                    durability.log_statement_drop(name);
                }
                admission.verdict().to_string()
            }
            Err(e) => {
                durability.log_statement_drop(name);
                format!("error: {e}")
            }
        };
        readmissions.push(Readmission {
            name: name.clone(),
            verdict,
        });
    }

    // Attach: from here on, every write, rotation, and (un)registration
    // is journaled, and acknowledgements wait on the commit watermark.
    cluster.attach_wal(durability.clone());
    models.set_rotation_observer(Some(Box::new({
        let durability = durability.clone();
        move |interval| durability.log_model_interval(interval)
    })));
    registry.set_journal(Some(durability.clone()));
    registry.set_durability(Some(Arc::new(StackControl {
        cluster: cluster.clone(),
        models: models.clone(),
        durability: durability.clone(),
    })));

    Ok(DurableStack {
        cluster,
        db,
        registry,
        models,
        report: recovered.report,
        readmissions,
        durability,
    })
}

/// A background thread that checkpoints whenever the WAL outgrows the
/// configured threshold ([`Durability::wants_snapshot`]), bounding both
/// log size and recovery time. Dropping it stops the checks (joining the
/// thread); an in-flight checkpoint finishes first.
pub struct SnapshotDaemon {
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotDaemon {
    pub fn spawn(stack: &DurableStack, check_period: Duration) -> SnapshotDaemon {
        let shutdown = Arc::new(AtomicBool::new(false));
        let cluster = stack.cluster.clone();
        let models = stack.models.clone();
        let durability = stack.durability.clone();
        let handle = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("piql-snapshot".into())
                .spawn(move || {
                    let tick = check_period
                        .min(Duration::from_millis(20))
                        .max(Duration::from_millis(1));
                    let mut slept = Duration::ZERO;
                    loop {
                        std::thread::sleep(tick);
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        slept += tick;
                        if slept < check_period {
                            continue;
                        }
                        slept = Duration::ZERO;
                        if durability.is_dead() || !durability.wants_snapshot() {
                            continue;
                        }
                        let cluster = cluster.clone();
                        let models = models.clone();
                        let result = durability.snapshot_with(move || {
                            let (store, rotations) = models.snapshot_with_rotations();
                            SnapshotInputs {
                                namespaces: cluster.export_namespaces(),
                                models: Some((rotations, store.interval_maps().to_vec())),
                            }
                        });
                        if let Err(e) = result {
                            eprintln!("piql-snapshot: checkpoint failed: {e}");
                        }
                    }
                })
                // lint:allow(durability-unwrap): daemon startup, not replay
                .expect("spawn snapshot daemon thread")
        };
        SnapshotDaemon {
            shutdown,
            handle: Some(handle),
        }
    }
}

impl Drop for SnapshotDaemon {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
