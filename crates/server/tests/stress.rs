//! Concurrent-session stress tests for the shared round fan-out pool:
//! many client threads drive one `LiveCluster`-backed server at once,
//! asserting (a) pipelined responses come back in request order, (b) no
//! update is lost when concurrent sessions write through the pool, (c)
//! exactly-one-winner semantics survive contended test-and-set rounds,
//! and (d) malformed protocol lines answer errors without killing the
//! connection. Run in CI under `--release` so the pool is exercised at
//! optimized timing.

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::protocol::request_to_line;
use piql_server::testkit::linear_predictor;
use piql_server::{Client, Json, PiqlServer, Request, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use std::io::Write;
use std::sync::Arc;

fn permissive_slo() -> SloConfig {
    SloConfig {
        slo_ms: 1e9,
        interval_confidence: 1.0,
        allow_degrade: false,
    }
}

/// A SCADr-loaded server on an ephemeral port; pool at its default width.
fn start_server() -> (Arc<Database<LiveCluster>>, PiqlServer) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let config = ScadrConfig {
        users_per_node: 20,
        thoughts_per_user: 5,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    let server = PiqlServer::start(
        db.clone(),
        linear_predictor(200, 100, 2),
        permissive_slo(),
        "127.0.0.1:0",
    )
    .unwrap();
    (db, server)
}

fn uname_param(i: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i)).into()]
}

/// The protocol reads one line, answers one line: a client may pipeline
/// many requests before reading, and the answers must come back in
/// request order even though each one fans out over the shared pool.
#[test]
fn pipelined_responses_preserve_request_order() {
    let (_db, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    // write 30 execute lines without reading a single response
    let mut raw = client.raw_stream().unwrap();
    let order: Vec<usize> = (0..30).map(|k| (k * 13) % 40).collect();
    for &i in &order {
        let line = request_to_line(&Request::Execute {
            name: "find".into(),
            params: uname_param(i),
            cursor: None,
        });
        raw.write_all(line.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
    }
    raw.flush().unwrap();

    // now drain: response k must answer request k
    for &i in &order {
        let response = client.raw_read_line().unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let rows = response.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        let first_col = rows[0].as_arr().unwrap()[0]
            .get("str")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_eq!(first_col, scadr::username(i), "answers arrive in order");
    }
}

/// N sessions insert disjoint rows concurrently; every row must be
/// readable afterwards — the fan-out pool may reorder work inside a
/// round, but it must not drop or cross-wire writes.
#[test]
fn concurrent_dml_loses_no_updates() {
    const THREADS: usize = 8;
    const INSERTS: usize = 40;
    let (_db, server) = start_server();
    let addr = server.local_addr();

    {
        let mut c = Client::connect(addr).unwrap();
        c.prepare(
            "mine",
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 1000",
        )
        .unwrap();
    }

    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for k in 0..INSERTS {
                    // timestamps far above the loader's range: disjoint keys
                    let ts = 1_000_000_000_000 + (t as i64) * 1_000_000 + k as i64;
                    client
                        .dml(
                            "INSERT INTO thoughts (owner, timestamp, text) \
                             VALUES (<u>, <ts>, <txt>)",
                            &[
                                Value::Varchar(scadr::username(t)).into(),
                                Value::Timestamp(ts).into(),
                                Value::Varchar(format!("t{t}k{k}")).into(),
                            ],
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no writer thread panicked");
    }

    let mut client = Client::connect(addr).unwrap();
    for t in 0..THREADS {
        let page = client.execute("mine", &uname_param(t), None).unwrap();
        let mine = (1_000_000_000_000 + (t as i64) * 1_000_000)
            ..(1_000_000_000_000 + (t as i64) * 1_000_000 + INSERTS as i64);
        let inserted = page
            .rows
            .iter()
            .filter_map(|r| r.get(1))
            .filter(|v| matches!(v, Value::Timestamp(ts) if mine.contains(ts)))
            .count();
        assert_eq!(inserted, INSERTS, "all of session {t}'s inserts landed");
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("exec_errors").and_then(Json::as_i64), Some(0));
}

/// All sessions race to insert the *same* primary key: the TAS round must
/// crown exactly one winner even with rounds fanning out concurrently.
#[test]
fn contended_inserts_have_exactly_one_winner() {
    const THREADS: usize = 8;
    let (_db, server) = start_server();
    let addr = server.local_addr();

    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .dml(
                        "INSERT INTO thoughts (owner, timestamp, text) \
                         VALUES (<u>, <ts>, <txt>)",
                        &[
                            Value::Varchar(scadr::username(0)).into(),
                            Value::Timestamp(7_777_777_777_777).into(),
                            Value::Varchar("the one".into()).into(),
                        ],
                    )
                    .is_ok()
            })
        })
        .collect();
    let wins = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|&won| won)
        .count();
    assert_eq!(wins, 1, "duplicate-pk insert must succeed exactly once");
}

/// Hostile lines — `{}`, truncated escapes, non-object JSON — get an
/// error *response* and the connection keeps serving (pinning down the
/// unwrap-free request parsing this PR hardened).
#[test]
fn malformed_lines_answer_errors_without_killing_the_connection() {
    let (_db, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    let mut raw = client.raw_stream().unwrap();
    for line in [
        "{}",
        "[1,2,3]",
        "{\"cmd\":\"execute\",\"name\":\"find\",\"params\":[{}]}",
        "{\"cmd\":\"stats\",\"x\":\"\\u12",
        "\"\\",
        "{\"cmd\":\"nope\"}",
    ] {
        raw.write_all(line.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
        raw.flush().unwrap();
        let response = client.raw_read_line().unwrap_or_else(|e| {
            panic!("connection died on line {line:?}: {e}");
        });
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "line {line:?} must produce an error envelope"
        );
    }

    // the same connection still serves real queries afterwards
    let page = client.execute("find", &uname_param(3), None).unwrap();
    assert_eq!(page.rows.len(), 1);
}
