//! End-to-end binary (v3) protocol tests against a `LiveCluster`-backed
//! server: codec negotiation (magic / hello / clean failure against a
//! v2-only endpoint), mixed v2+v3 clients sharing one server, pipelining,
//! the malformed-frame id echo, and the acceptance property of the hot
//! path — fast point-read responses byte-identical to the general path's,
//! with `fast_point_reads` accounting for them.

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::server::handle_request;
use piql_server::testkit::linear_predictor;
use piql_server::{
    BinaryConn, BinaryWire, Client, Envelope, Json, PiqlServer, Request, RequestId, SloConfig,
    StatementRegistry, Wire,
};
use piql_workloads::scadr::{self, ScadrConfig};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

const POINT: &str = "SELECT * FROM users WHERE username = <u>";

fn permissive_slo() -> SloConfig {
    SloConfig {
        slo_ms: 1e9,
        interval_confidence: 1.0,
        allow_degrade: false,
    }
}

fn scadr_db() -> Arc<Database<LiveCluster>> {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let config = ScadrConfig {
        users_per_node: 20,
        thoughts_per_user: 11,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    db
}

fn start_server() -> PiqlServer {
    PiqlServer::start(
        scadr_db(),
        linear_predictor(200, 100, 2),
        permissive_slo(),
        "127.0.0.1:0",
    )
    .unwrap()
}

fn uname_param(i: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i)).into()]
}

#[test]
fn binary_client_negotiates_and_matches_json_client() {
    let server = start_server();
    let addr = server.local_addr();

    let mut v2 = Client::connect(addr).unwrap();
    let mut v3 = Client::connect_binary(addr).unwrap();
    assert_eq!(v2.wire_version(), 2);
    assert_eq!(v3.wire_version(), 3);

    let verdict = v3.prepare("point", POINT).unwrap();
    assert_eq!(
        verdict.get("status").and_then(Json::as_str),
        Some("admitted")
    );

    // the same point reads over both codecs decode to the same pages
    for i in [0, 3, 7, 19] {
        let a = v2.execute("point", &uname_param(i), None).unwrap();
        let b = v3.execute("point", &uname_param(i), None).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rows.len(), 1);
    }
    // a miss answers an empty page on both
    let params = vec![Value::Varchar("no-such-user".into()).into()];
    let a = v2.execute("point", &params, None).unwrap();
    let b = v3.execute("point", &params, None).unwrap();
    assert_eq!(a, b);
    assert!(a.rows.is_empty());

    // every v3 point read went through the fast path
    let fast = server
        .registry()
        .counters
        .fast_point_reads
        .load(Ordering::Relaxed);
    assert_eq!(fast, 5);

    // a paginated statement falls back transparently over v3
    v3.prepare(
        "stream",
        "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 4",
    )
    .unwrap();
    let page = v3.execute("stream", &uname_param(5), None).unwrap();
    assert_eq!(page.rows.len(), 4);
    let next = v3
        .cursor_next("stream", &uname_param(5), page.cursor.unwrap())
        .unwrap();
    assert_eq!(next.rows.len(), 4);

    // a v3 write is visible to the v2 reader: one server, one store
    v3.dml(
        "INSERT INTO users (username, password, home_town) VALUES (<u>, <p>, <h>)",
        &[
            Value::Varchar("binary-born".into()).into(),
            Value::Varchar("hash".into()).into(),
            Value::Varchar("town".into()).into(),
        ],
    )
    .unwrap();
    let seen = v2
        .execute(
            "point",
            &[Value::Varchar("binary-born".into()).into()],
            None,
        )
        .unwrap();
    assert_eq!(seen.rows.len(), 1);

    // control verbs work over v3 too
    let stats = v3.stats().unwrap();
    assert!(stats.get("statements").and_then(Json::as_arr).is_some());
    assert!(v3.revalidate().unwrap().get("sweep").is_some());
}

#[test]
fn fast_point_response_is_byte_identical_to_general_path() {
    let db = scadr_db();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        permissive_slo(),
    ));
    registry.register("point", POINT).unwrap();
    let statement = registry.get("point").unwrap();
    assert!(
        statement.fast_point().is_some(),
        "full-pk equality lookup must qualify for the fast path"
    );

    let wire = BinaryWire;
    let mut conn = BinaryConn::new(registry.clone());
    let cases = [
        (Some(RequestId::Int(17)), scadr::username(4)),
        (Some(RequestId::Str("req-β".into())), scadr::username(9)),
        (None, scadr::username(12)),
        (Some(RequestId::Int(-1)), "no-such-user".to_string()), // miss
    ];
    let n = cases.len() as u64;
    for (id, user) in cases {
        let env = Envelope {
            id,
            request: Request::Execute {
                name: "point".into(),
                params: vec![Value::Varchar(user).into()],
                cursor: None,
            },
        };
        let mut frame = Vec::new();
        wire.encode_envelope(&env, &mut frame);
        conn.handle_frame(&frame[4..]);

        // the general path's encoding of the same request
        let mut session = Session::new();
        let response = handle_request(&env.request, &mut session, &registry);
        let mut expected = Vec::new();
        wire.encode_response(env.id.as_ref(), &response, &mut expected);

        assert_eq!(conn.output(), &expected[..]);
        conn.clear_output();
    }
    assert_eq!(
        registry.counters.fast_point_reads.load(Ordering::Relaxed),
        n
    );
    // fast handles + their general twins both count as executions
    assert_eq!(registry.counters.executed.load(Ordering::Relaxed), 2 * n);
    assert_eq!(statement.executions.load(Ordering::Relaxed), 2 * n);
}

#[test]
fn malformed_binary_payload_echoes_header_id() {
    let server = start_server();
    let mut client = Client::connect_binary(server.local_addr()).unwrap();
    let raw = client.raw_stream().unwrap();

    // valid header (opcode `execute`, int id 77), garbage payload
    let mut body = vec![piql_server::binary::OP_EXECUTE, 1];
    body.extend_from_slice(&77i64.to_le_bytes());
    body.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    let mut w = raw;
    w.write_all(&frame).unwrap();
    w.flush().unwrap();

    let response = client.raw_read_line().unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(response.get("id"), Some(&Json::Int(77)));
    assert!(response.get("error").is_some());

    // the stream survives: the next well-formed request still answers
    client.prepare("point", POINT).unwrap();
    let page = client.execute("point", &uname_param(2), None).unwrap();
    assert_eq!(page.rows.len(), 1);
}

#[test]
fn binary_pipeline_reassembles_positionally() {
    let server = start_server();
    let mut client = Client::connect_binary(server.local_addr()).unwrap();
    client.prepare("point", POINT).unwrap();

    let mut pipeline = client.pipeline();
    for i in 0..20 {
        pipeline.queue_execute("point", &uname_param(i % 40));
    }
    let responses = pipeline.flush().unwrap();
    assert_eq!(responses.len(), 20);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let page = piql_server::decode_page(response).unwrap();
        assert_eq!(page.rows.len(), 1, "request {i}");
    }
}

#[test]
fn binary_client_fails_cleanly_against_a_v2_only_endpoint() {
    // a v2-only server reads the magic as one garbage line and answers a
    // JSON error line; the v3 client must fail with InvalidData, not hang
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_v2 = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line).unwrap();
        let mut w = stream;
        w.write_all(b"{\"ok\":false,\"error\":\"malformed request\"}\n")
            .unwrap();
    });
    let err = match Client::connect_binary(addr) {
        Err(e) => e,
        Ok(_) => panic!("negotiation against a v2-only endpoint must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("does not speak v3"), "{err}");
    fake_v2.join().unwrap();
}
