//! Overload-control end-to-end tests: typed budget rejections and their
//! `stats` surface, shed (degraded-plan) admission, queue timeouts, the
//! slow-consumer backpressure regression, and the capped-drift `stats`
//! latency pin.

use piql_core::plan::params::ParamValue;
use piql_core::tuple;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::protocol::request_to_line;
use piql_server::testkit::linear_predictor;
use piql_server::{
    BudgetPolicy, Client, Json, PiqlServer, Request, ServerTuning, SloConfig, StatementRegistry,
};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn permissive_slo() -> SloConfig {
    SloConfig {
        slo_ms: 1e9,
        interval_confidence: 1.0,
        allow_degrade: true,
    }
}

/// A registry over one wide-rowed table: 400 rows in group `"g"`, each
/// with a ~400-byte payload (so scan responses are heavy enough to fill
/// socket buffers in the slow-consumer test).
fn build_registry() -> Arc<StatementRegistry<LiveCluster>> {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    db.execute_ddl(
        "CREATE TABLE items ( \
           g VARCHAR(24) NOT NULL, \
           k VARCHAR(24) NOT NULL, \
           v VARCHAR(512), \
           PRIMARY KEY (g, k) )",
    )
    .unwrap();
    let payload = "x".repeat(400);
    db.bulk_load(
        "items",
        (0..400u64).map(|i| tuple!["g", format!("k{i:05}").as_str(), payload.as_str()]),
    )
    .unwrap();
    Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        permissive_slo(),
    ))
}

fn register_acme(registry: &StatementRegistry<LiveCluster>) {
    registry
        .register(
            "acme.point",
            "SELECT * FROM items WHERE g = <g> AND k = <k> LIMIT 1",
        )
        .unwrap();
    registry
        .register("acme.scan", "SELECT * FROM items WHERE g = <g> LIMIT 50")
        .unwrap();
}

fn point_params(k: &str) -> Vec<ParamValue> {
    vec![
        Value::Varchar("g".into()).into(),
        Value::Varchar(k.into()).into(),
    ]
}

fn exec_point(client: &mut Client, k: &str) -> Json {
    client
        .request_raw(&Request::Execute {
            name: "acme.point".into(),
            params: point_params(k),
            cursor: None,
        })
        .unwrap()
}

/// A zero-capacity Reject budget turns every execution into the typed
/// `budget-exceeded` error, visible in the response envelope and in the
/// `stats` overload block; lifting the budget restores service.
#[test]
fn budget_reject_surfaces_typed_error_and_stats() {
    let registry = build_registry();
    register_acme(&registry);
    registry.set_tenant_budget("acme", Some(0), BudgetPolicy::Reject);
    let server = PiqlServer::start_with_registry(registry.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let resp = exec_point(&mut client, "k00001");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some("budget-exceeded"),
        "untyped rejection: {resp:?}"
    );
    assert_eq!(resp.get("tenant").and_then(Json::as_str), Some("acme"));
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .contains("budget"));

    let stats = client.stats().unwrap();
    let overload = stats.get("overload").expect("stats lost overload block");
    assert!(
        overload
            .get("budget_rejected")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1
    );
    let tenants = match overload.get("tenants") {
        Some(Json::Arr(t)) => t,
        other => panic!("overload.tenants missing: {other:?}"),
    };
    let acme = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(Json::as_str) == Some("acme"))
        .expect("acme snapshot missing");
    assert_eq!(acme.get("capacity").and_then(Json::as_i64), Some(0));
    assert_eq!(acme.get("policy").and_then(Json::as_str), Some("reject"));
    assert!(acme.get("rejected").and_then(Json::as_i64).unwrap_or(0) >= 1);
    assert_eq!(acme.get("in_flight").and_then(Json::as_i64), Some(0));

    // Lifting the budget restores full service on the same connection.
    registry.set_tenant_budget("acme", None, BudgetPolicy::Reject);
    let resp = exec_point(&mut client, "k00001");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
}

/// A zero-capacity Shed budget admits into the overflow band and serves
/// the pre-compiled shed plan: success, `degraded: true`, and the
/// tightest-bound LIMIT instead of the full one.
#[test]
fn budget_shed_serves_degraded_plan() {
    let registry = build_registry();
    register_acme(&registry);
    registry.set_tenant_budget("acme", Some(0), BudgetPolicy::Shed);
    let server = PiqlServer::start_with_registry(registry.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let resp = client
        .request_raw(&Request::Execute {
            name: "acme.scan".into(),
            params: vec![Value::Varchar("g".into()).into()],
            cursor: None,
        })
        .unwrap();
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "shed should admit: {resp:?}"
    );
    assert_eq!(
        resp.get("degraded").and_then(Json::as_bool),
        Some(true),
        "shed response not marked degraded: {resp:?}"
    );
    let rows = resp.get("rows").and_then(Json::as_arr).unwrap();
    assert!(
        !rows.is_empty() && rows.len() < 50,
        "expected a tightened bound, got {} rows",
        rows.len()
    );

    let stats = client.stats().unwrap();
    let overload = stats.get("overload").unwrap();
    assert!(
        overload
            .get("budget_shed")
            .and_then(Json::as_i64)
            .unwrap_or(0)
            >= 1
    );
}

/// A zero-capacity Queue budget waits out `max_wait` then rejects; the
/// wait is observable and the timeout is counted.
#[test]
fn budget_queue_times_out_then_rejects() {
    let registry = build_registry();
    register_acme(&registry);
    registry.set_tenant_budget(
        "acme",
        Some(0),
        BudgetPolicy::Queue {
            max_wait: Duration::from_millis(120),
        },
    );
    let server = PiqlServer::start_with_registry(registry.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let t0 = Instant::now();
    let resp = exec_point(&mut client, "k00002");
    let waited = t0.elapsed();
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some("budget-exceeded"),
        "queue should reject after timeout: {resp:?}"
    );
    assert!(
        waited >= Duration::from_millis(80),
        "rejected without queueing: {waited:?}"
    );
    let snapshot = registry
        .tenant_budgets()
        .into_iter()
        .find(|b| b.tenant() == "acme")
        .unwrap()
        .snapshot();
    assert!(snapshot.queue_timeouts >= 1, "{snapshot:?}");
    assert_eq!(snapshot.in_flight, 0, "{snapshot:?}");
}

/// Regression: a connection that stops reading its socket (wedged
/// consumer) must not wedge the server-wide dispatch pool. With the
/// per-connection in-flight cap, the wedged connection's reader lane
/// parks at the cap (counted as backpressure stalls) while other
/// connections' requests keep completing promptly.
#[test]
fn slow_consumer_does_not_wedge_dispatch_pool() {
    let registry = build_registry();
    register_acme(&registry);
    let server = PiqlServer::start_tuned(
        registry.clone(),
        "127.0.0.1:0",
        ServerTuning {
            dispatch_threads: 2,
            max_in_flight_per_conn: 4,
        },
    )
    .unwrap();

    // Connection A: write 300 heavy scans and never read a byte back.
    let wedged = Client::connect(server.local_addr()).unwrap();
    let mut raw = wedged.raw_stream().unwrap();
    let line = request_to_line(&Request::Execute {
        name: "acme.scan".into(),
        params: vec![Value::Varchar("g".into()).into()],
        cursor: None,
    });
    let frame = format!("{line}\n");
    raw.set_write_timeout(Some(Duration::from_millis(100))).ok();
    let mut wrote_all = true;
    for _ in 0..300 {
        if raw.write_all(frame.as_bytes()).is_err() {
            // Kernel send buffer full — the wedge is fully in effect.
            wrote_all = false;
            break;
        }
    }
    if wrote_all {
        raw.flush().ok();
    }

    // Connection B: must keep completing promptly regardless.
    let mut healthy = Client::connect(server.local_addr()).unwrap();
    let t0 = Instant::now();
    for i in 0..20 {
        let resp = exec_point(&mut healthy, &format!("k{:05}", i));
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "healthy connection starved: {resp:?}"
        );
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "healthy connection took {elapsed:?} behind a wedged consumer"
    );

    // The wedged connection's reader must have parked at the cap.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stalls = registry
            .counters
            .backpressure_stalls
            .load(std::sync::atomic::Ordering::Relaxed);
        if stalls >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no backpressure stall recorded for the wedged connection"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// `stats` must serialize a bounded drift window per statement (last 8
/// intervals), so its cost stays flat as sweeps accumulate — pinned both
/// structurally (window length) and with a loose latency ratio, with 1k
/// registered statements.
#[test]
fn stats_drift_window_is_capped_and_latency_flat() {
    let registry = build_registry();
    for i in 0..1_000 {
        registry
            .register(
                &format!("t{}.s{i}", i % 7),
                "SELECT * FROM items WHERE g = <g> AND k = <k> LIMIT 1",
            )
            .unwrap();
    }
    let server = PiqlServer::start_with_registry(registry.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let drift_lengths = |stats: &Json| -> Vec<usize> {
        match stats.get("statements") {
            Some(Json::Arr(stmts)) => stmts
                .iter()
                .map(|s| match s.get("drift") {
                    Some(Json::Arr(d)) => d.len(),
                    _ => 0,
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let time_stats = |client: &mut Client| -> (Duration, Json) {
        // median of 5 calls, so one scheduler hiccup can't skew the pin
        let mut best = Duration::MAX;
        let mut last = Json::Null;
        for _ in 0..5 {
            let t0 = Instant::now();
            last = client.stats().unwrap();
            best = best.min(t0.elapsed());
        }
        (best, last)
    };

    for _ in 0..10 {
        registry.revalidate();
    }
    let (early, stats) = time_stats(&mut client);
    let lens = drift_lengths(&stats);
    assert_eq!(lens.len(), 1_000);
    assert!(
        lens.iter().all(|&l| l == 8),
        "drift window not capped at 8 after 10 sweeps"
    );

    for _ in 0..10 {
        registry.revalidate();
    }
    let (late, stats) = time_stats(&mut client);
    assert!(
        drift_lengths(&stats).iter().all(|&l| l == 8),
        "drift window grew with sweep count"
    );
    // Each statement retains >8 events internally; the reply only ships 8.
    assert!(registry.list().iter().any(|s| s.drift_len() > 8));
    assert!(
        late < early * 6 + Duration::from_millis(50),
        "stats latency grew with drift history: {early:?} -> {late:?}"
    );
}
