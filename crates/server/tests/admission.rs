//! Admission control: the success-tolerant service boundary.
//!
//! Pins the acceptance property: a statement whose predicted p99 exceeds
//! the SLO is rejected (or degraded) **without issuing a single storage
//! operation** — `LiveCluster::op_count` must not move on rejection.

use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::testkit::linear_predictor;
use piql_server::{Admission, SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;

const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
     WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
     ORDER BY thoughts.timestamp DESC LIMIT 10";

fn scadr_db(max_subscriptions: u64) -> (Arc<LiveCluster>, Arc<Database<LiveCluster>>) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 30,
        thoughts_per_user: 12,
        subscriptions_per_user: 5,
        max_subscriptions,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    (cluster, db)
}

/// With a 0.1 ms/row linear model: find_user costs ~0.4ms, the
/// thoughtstream with a 100-subscription constraint costs ~110ms.
fn registry(
    db: Arc<Database<LiveCluster>>,
    slo_ms: f64,
    allow_degrade: bool,
) -> StatementRegistry<LiveCluster> {
    StatementRegistry::new(
        db,
        linear_predictor(200, 100, 3),
        SloConfig {
            slo_ms,
            interval_confidence: 1.0,
            allow_degrade,
        },
    )
}

#[test]
fn cheap_statement_is_admitted_and_executes() {
    let (_cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, true);
    let verdict = reg
        .register("find_user", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    match verdict {
        Admission::Admitted { predicted_p99_ms } => {
            assert!(predicted_p99_ms < 80.0, "{predicted_p99_ms}")
        }
        other => panic!("expected admission, got {other:?}"),
    }
    let mut session = Session::new();
    let mut params = piql_core::plan::params::Params::new();
    params.set(0, piql_core::value::Value::Varchar(scadr::username(3)));
    let result = reg
        .execute(&mut session, "find_user", &params, None)
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(
        reg.counters
            .executed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn over_slo_statement_is_degraded_via_the_advisor() {
    let (_cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, true);
    let verdict = reg.register("thoughtstream", THOUGHTSTREAM).unwrap();
    let limit = match verdict {
        Admission::Degraded {
            predicted_p99_ms,
            original_limit,
            limit,
        } => {
            assert_eq!(original_limit, 10);
            assert!(limit < 10, "degraded limit must shrink, got {limit}");
            assert!(
                predicted_p99_ms <= 80.0,
                "degraded prediction {predicted_p99_ms} must meet the SLO"
            );
            limit
        }
        other => panic!("expected degradation, got {other:?}"),
    };
    // the degraded bound is enforced at execution
    let mut session = Session::new();
    let mut params = piql_core::plan::params::Params::new();
    params.set(0, piql_core::value::Value::Varchar(scadr::username(1)));
    let result = reg
        .execute(&mut session, "thoughtstream", &params, None)
        .unwrap();
    assert!(
        result.rows.len() as u64 <= limit,
        "{} rows > degraded limit {limit}",
        result.rows.len()
    );
}

#[test]
fn unbounded_statement_is_rejected_with_zero_storage_operations() {
    let (cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, true);
    let ops_before = cluster.op_count();
    let verdict = reg
        .register("grep_thoughts", "SELECT * FROM thoughts WHERE text = <t>")
        .unwrap();
    match &verdict {
        Admission::RejectedUnbounded { report } => {
            assert!(
                report.to_string().contains("not scale-independent"),
                "insight report travels with the rejection: {report}"
            );
            assert!(
                !report.suggestions.is_empty(),
                "the structured rejection keeps the assistant's suggestions"
            );
        }
        other => panic!("expected unbounded rejection, got {other:?}"),
    }
    assert_eq!(
        cluster.op_count(),
        ops_before,
        "rejection must not issue any storage operation"
    );
    // and the statement is not executable
    let mut session = Session::new();
    let err = reg
        .execute(
            &mut session,
            "grep_thoughts",
            &piql_core::plan::params::Params::new(),
            None,
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown statement"));
}

#[test]
fn infeasible_slo_rejects_with_zero_storage_operations() {
    let (cluster, db) = scadr_db(100);
    // 10ms SLO: even LIMIT 1 costs ~(100 + 100·1) rows ≈ 20ms+
    let reg = registry(db, 10.0, true);
    let ops_before = cluster.op_count();
    let verdict = reg.register("thoughtstream", THOUGHTSTREAM).unwrap();
    match verdict {
        Admission::RejectedSlo { predicted_p99_ms } => {
            assert!(predicted_p99_ms > 10.0, "{predicted_p99_ms}")
        }
        other => panic!("expected SLO rejection, got {other:?}"),
    }
    assert_eq!(
        cluster.op_count(),
        ops_before,
        "SLO rejection (including the advisor's degradation probes) \
         must not issue any storage operation"
    );
    assert!(reg.get("thoughtstream").is_none());
}

#[test]
fn degradation_disabled_rejects_instead() {
    let (cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, false);
    let ops_before = cluster.op_count();
    let verdict = reg.register("thoughtstream", THOUGHTSTREAM).unwrap();
    assert!(
        matches!(verdict, Admission::RejectedSlo { .. }),
        "got {verdict:?}"
    );
    assert_eq!(cluster.op_count(), ops_before);
}

#[test]
fn counters_track_every_verdict() {
    let (_cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, true);
    reg.register("q1", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    reg.register("q2", THOUGHTSTREAM).unwrap();
    reg.register("q3", "SELECT * FROM thoughts WHERE text = <t>")
        .unwrap();
    let c = &reg.counters;
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(c.admitted.load(Relaxed), 1);
    assert_eq!(c.degraded.load(Relaxed), 1);
    assert_eq!(c.rejected_unbounded.load(Relaxed), 1);
    assert_eq!(c.rejected_slo.load(Relaxed), 0);
}

#[test]
fn rejected_reregistration_unregisters_the_old_statement() {
    let (_cluster, db) = scadr_db(100);
    let reg = registry(db, 80.0, true);
    reg.register("q", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    assert!(reg.get("q").is_some());
    // re-register the same name with SQL that gets rejected
    let verdict = reg
        .register("q", "SELECT * FROM thoughts WHERE text = <t>")
        .unwrap();
    assert!(matches!(verdict, Admission::RejectedUnbounded { .. }));
    assert!(
        reg.get("q").is_none(),
        "a rejected re-registration must not leave the stale statement executable"
    );
    let mut session = Session::new();
    let err = reg
        .execute(
            &mut session,
            "q",
            &piql_core::plan::params::Params::new(),
            None,
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown statement"));
}

#[test]
fn latency_metrics_exclude_backend_uptime_and_client_think_time() {
    let (_cluster, db) = scadr_db(100);
    // let the backend age before the first execution
    std::thread::sleep(std::time::Duration::from_millis(30));
    let reg = registry(db, 80.0, true);
    reg.register("find_user", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    let mut session = Session::new();
    let mut params = piql_core::plan::params::Params::new();
    params.set(0, piql_core::value::Value::Varchar(scadr::username(3)));
    reg.execute(&mut session, "find_user", &params, None)
        .unwrap();
    // think time between requests must not count as query latency
    std::thread::sleep(std::time::Duration::from_millis(30));
    reg.execute(&mut session, "find_user", &params, None)
        .unwrap();
    let p_max = reg.get("find_user").unwrap().quantile_ms(1.0);
    assert!(
        p_max < 25.0,
        "recorded max latency {p_max}ms includes uptime or think time"
    );
}
