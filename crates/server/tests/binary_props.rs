//! Property tests for the binary (v3) wire codec, mirroring
//! `json_props.rs`: envelope and response round trips (awkward strings,
//! astral chars, every id flavor), the no-panic guarantee on truncated /
//! bit-flipped frames — a hostile frame must surface `ProtoError` or a
//! frame-layer `io::Error`, never kill the connection handler — plus the
//! framing layer itself (`read_frame` on cut-off streams) and the
//! header-id recovery contract (`extract_id` on mangled payloads).

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_server::json::Json;
use piql_server::protocol::ok_response;
use piql_server::{BinaryWire, Envelope, Request, RequestId, Wire};
use proptest::prelude::*;
use std::io::BufReader;

/// Strings mixing ASCII, escapes-required chars, control chars, wide BMP
/// chars, and (sometimes) astral chars (same shape as `json_props.rs`).
fn string_content() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(any::<char>(), 0..16),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(chars, quoteish, astral)| {
            let mut s: String = chars.into_iter().collect();
            if quoteish {
                s.push('"');
                s.push('\\');
                s.push('\n');
                s.push('\u{0007}');
            }
            if astral {
                s.push('😀');
                s.push('🦀');
            }
            s
        })
}

/// A scalar JSON value whose binary serialization round-trips exactly.
/// Unlike the text codec, the binary codec carries `f64` bits verbatim,
/// so infinities round-trip too; NaN is bit-exact as well but `==` can't
/// see that, so it gets its own test (`nan_bits_roundtrip`).
fn scalar() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        any::<f64>().prop_map(|f| Json::Float(if f.is_nan() { f64::INFINITY } else { f })),
        string_content().prop_map(Json::Str),
    ]
}

/// A bounded-depth document: the response shapes the server produces.
fn document() -> impl Strategy<Value = Json> {
    prop_oneof![
        scalar(),
        prop::collection::vec(scalar(), 0..6).prop_map(Json::Arr),
        prop::collection::btree_map(string_content(), scalar(), 0..6).prop_map(Json::Obj),
        (
            prop::collection::vec(scalar(), 0..4),
            prop::collection::btree_map(string_content(), scalar(), 0..4),
        )
            .prop_map(|(arr, obj)| { Json::Arr(vec![Json::Arr(arr), Json::Obj(obj), Json::Null]) }),
    ]
}

/// An arbitrary client-assigned request id (both flavors).
fn request_id() -> impl Strategy<Value = RequestId> {
    prop_oneof![
        any::<i64>().prop_map(RequestId::Int),
        string_content().prop_map(RequestId::Str),
    ]
}

/// An arbitrary scalar wire value.
fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::BigInt),
        string_content().prop_map(Value::Varchar),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
        any::<f64>().prop_map(Value::Double),
    ]
}

/// An arbitrary wire value parameter (scalar or IN-collection).
fn param() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        scalar_value().prop_map(ParamValue::Scalar),
        prop::collection::vec(scalar_value(), 0..4).prop_map(ParamValue::Collection),
    ]
}

/// An arbitrary non-batch request (what a batch may carry).
fn sub_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (string_content(), string_content()).prop_map(|(name, sql)| Request::Prepare { name, sql }),
        (string_content(), prop::collection::vec(param(), 0..4)).prop_map(|(name, params)| {
            Request::Execute {
                name,
                params,
                cursor: None,
            }
        }),
        (string_content(), prop::collection::vec(param(), 0..4))
            .prop_map(|(sql, params)| Request::Dml { sql, params }),
        Just(Request::Stats),
        Just(Request::Revalidate),
        Just(Request::Rebalance),
    ]
}

/// Encode an envelope and strip the length prefix (the part
/// `decode_envelope` consumes).
fn encode_body(env: &Envelope) -> Vec<u8> {
    let mut frame = Vec::new();
    BinaryWire.encode_envelope(env, &mut frame);
    frame.split_off(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any request under any id (or none) survives the binary envelope
    /// encode→decode exactly.
    #[test]
    fn envelopes_roundtrip(
        tagged in any::<bool>(),
        id in request_id(),
        request in sub_request(),
    ) {
        let env = Envelope { id: tagged.then_some(id), request };
        let body = encode_body(&env);
        prop_assert_eq!(BinaryWire.decode_envelope(&body), Ok(env));
    }

    /// Any response document under any id survives encode→decode exactly,
    /// id carried in the header (not in the body).
    #[test]
    fn responses_roundtrip(
        tagged in any::<bool>(),
        id in request_id(),
        doc in document(),
    ) {
        let id = tagged.then_some(id);
        let response = ok_response([("payload", doc)]);
        let mut frame = Vec::new();
        BinaryWire.encode_response(id.as_ref(), &response, &mut frame);
        let decoded = BinaryWire.decode_response(&frame[4..]);
        prop_assert_eq!(decoded, Ok((id, response)));
    }

    /// Every prefix of a valid frame body either decodes or returns a
    /// `ProtoError` — truncation can never panic or loop.
    #[test]
    fn truncated_bodies_never_panic(
        id in request_id(),
        request in sub_request(),
        cut in any::<prop::sample::Index>(),
    ) {
        let body = encode_body(&Envelope { id: Some(id), request });
        let at = cut.index(body.len() + 1);
        let _ = BinaryWire.decode_envelope(&body[..at]);
        let _ = BinaryWire.decode_response(&body[..at]);
        let _ = BinaryWire.extract_id(&body[..at]);
        prop_assert!(true);
    }

    /// A single flipped byte anywhere in the body either decodes (to
    /// *something* — e.g. a flipped id value) or errors; never panics.
    #[test]
    fn corrupted_bodies_never_panic(
        id in request_id(),
        request in sub_request(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut body = encode_body(&Envelope { id: Some(id), request });
        if !body.is_empty() {
            let at = pos.index(body.len());
            body[at] ^= xor;
        }
        let _ = BinaryWire.decode_envelope(&body);
        let _ = BinaryWire.decode_response(&body);
        let _ = BinaryWire.extract_id(&body);
        prop_assert!(true);
    }

    /// The framing layer: a stream cut anywhere inside a frame surfaces a
    /// clean `io::Error` (mid-frame EOF) — except a cut at a frame
    /// boundary, which is a clean end-of-stream. Never panics, never
    /// yields a short frame.
    #[test]
    fn truncated_streams_never_panic(
        id in request_id(),
        request in sub_request(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut frame = Vec::new();
        BinaryWire.encode_envelope(&Envelope { id: Some(id), request }, &mut frame);
        let total = frame.len();
        let at = cut.index(total + 1);
        let mut reader = BufReader::new(&frame[..at]);
        let mut buf = Vec::new();
        match BinaryWire.read_frame(&mut reader, &mut buf) {
            Ok(true) => prop_assert_eq!(at, total, "full frame only at full length"),
            Ok(false) => prop_assert_eq!(at, 0, "clean EOF only at offset 0"),
            Err(_) => prop_assert!(at > 0 && at < total),
        }
    }

    /// Header-id recovery: a frame whose *payload* is garbage but whose
    /// header is intact still yields the client's id via `extract_id` —
    /// the binary half of the id-echo-on-malformed contract.
    #[test]
    fn header_ids_survive_garbage_payloads(
        id in request_id(),
        garbage in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        // a well-formed execute header...
        let env = Envelope {
            id: Some(id.clone()),
            request: Request::Stats,
        };
        let mut body = encode_body(&env);
        // ...with arbitrary junk appended (stats has an empty payload, so
        // the junk is pure payload garbage)
        body.extend_from_slice(&garbage);
        prop_assert_eq!(BinaryWire.extract_id(&body), Some(id));
    }

    /// Arbitrary bytes fed straight into the decoders: error or decode,
    /// never panic (fuzz-shaped safety net).
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = BinaryWire.decode_envelope(&bytes);
        let _ = BinaryWire.decode_response(&bytes);
        let _ = BinaryWire.extract_id(&bytes);
        prop_assert!(true);
    }

    /// Every NaN payload's bits survive the codec verbatim (the property
    /// `responses_roundtrip` can't assert through `==`).
    #[test]
    fn nan_bits_roundtrip(mantissa in 1u64..(1 << 52), sign in any::<bool>()) {
        let bits = (u64::from(sign) << 63) | 0x7FF0_0000_0000_0000 | mantissa;
        let nan = f64::from_bits(bits);
        prop_assert!(nan.is_nan());
        let response = ok_response([("payload", Json::Float(nan))]);
        let mut frame = Vec::new();
        BinaryWire.encode_response(None, &response, &mut frame);
        let (_, decoded) = BinaryWire.decode_response(&frame[4..]).unwrap();
        let Some(Json::Float(out)) = decoded.get("payload") else {
            return Err(TestCaseError::fail("payload missing"));
        };
        prop_assert_eq!(out.to_bits(), bits);
    }
}
