//! Pinning regressions for the client-reachable panics fixed during the
//! concurrency-analysis pass (PR 8):
//!
//! - `prepare` answered `.expect("admitted statement installed")` after
//!   admission, but a rival prepare of the same name landing on a
//!   rejection path uninstalls the entry (`register` documents this), so
//!   the lookup can legitimately miss — the handler must answer, not
//!   panic.
//! - The binary protocol's fixed-width number decoders used
//!   `try_into().unwrap()`; they must stay panic-free for any input the
//!   framing layer can deliver.

use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::server::handle_line;
use piql_server::testkit::linear_predictor;
use piql_server::Json;
use piql_server::{BinaryConn, SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::{Arc, Barrier};
use std::thread;

const BOUNDED: &str = "SELECT * FROM users WHERE username = <u>";
// Equality on a non-key column: rejected as not scale-independent, and the
// rejection path *uninstalls* the name — the other half of the race.
const UNBOUNDED: &str = "SELECT * FROM thoughts WHERE text = <t>";

fn registry() -> Arc<StatementRegistry<LiveCluster>> {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    scadr::setup(
        &db,
        &ScadrConfig {
            users_per_node: 4,
            thoughts_per_user: 2,
            subscriptions_per_user: 1,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: false,
        },
    ))
}

fn prepare_line(name: &str, sql: &str) -> String {
    format!(r#"{{"cmd":"prepare","name":"{name}","sql":"{sql}"}}"#)
}

/// Two clients race `prepare` on one name: one with an admittable bounded
/// statement, one with an unbounded statement whose rejection uninstalls
/// the entry. Every interleaving must produce an *answer* — before the
/// fix, the admitted side panicked its worker whenever the uninstall won
/// the window between admission and the response-building lookup.
#[test]
fn racing_prepares_of_one_name_always_answer() {
    const ITERS: usize = 400;
    let registry = registry();
    let barrier = Arc::new(Barrier::new(2));

    let admitter = {
        let registry = registry.clone();
        let barrier = barrier.clone();
        thread::spawn(move || {
            let mut session = Session::new();
            barrier.wait();
            let mut admitted = 0usize;
            for _ in 0..ITERS {
                let resp = handle_line(&prepare_line("hot", BOUNDED), &mut session, &registry);
                // Admitted, or gracefully reporting the concurrent removal
                // — never a panic, never any other shape.
                if resp.get("status").and_then(Json::as_str) == Some("admitted") {
                    admitted += 1;
                } else {
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(false),
                        "{resp:?}"
                    );
                    let err = resp.get("error").and_then(Json::as_str).unwrap_or_default();
                    assert!(err.contains("removed by a concurrent"), "{resp:?}");
                }
            }
            admitted
        })
    };
    let rejecter = {
        let registry = registry.clone();
        let barrier = barrier.clone();
        thread::spawn(move || {
            let mut session = Session::new();
            barrier.wait();
            for _ in 0..ITERS {
                let resp = handle_line(&prepare_line("hot", UNBOUNDED), &mut session, &registry);
                // The unbounded statement must always be refused.
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("rejected-unbounded"),
                    "{resp:?}"
                );
            }
        })
    };

    let admitted = admitter.join().expect("admitter must not panic");
    rejecter.join().expect("rejecter must not panic");
    // The race is only exercised if real admissions happened (the
    // removed-by-rival answer is `ok: false`, so this also proves the
    // vacuous case — all-errors from a malformed line — can't pass).
    assert!(admitted > 0, "no prepare ever admitted; race not exercised");
}

/// Every truncation of a valid binary frame decodes to an error response
/// (or a clean skip) — never a panic from the fixed-width number readers.
#[test]
fn truncated_binary_frames_answer_errors_not_panics() {
    use piql_server::{BinaryWire, Envelope, Request, Wire};

    let registry = registry();
    registry.register("point", BOUNDED).unwrap();

    let wire = BinaryWire;
    let mut frame = Vec::new();
    wire.encode_envelope(
        &Envelope {
            id: Some(piql_server::RequestId::Int(7)),
            request: Request::Execute {
                name: "point".into(),
                params: vec![piql_core::value::Value::Varchar("u".into()).into()],
                cursor: None,
            },
        },
        &mut frame,
    );
    let body = frame.split_off(4); // drop the length prefix, as the read loop does

    let mut conn = BinaryConn::new(registry);
    for cut in 0..body.len() {
        conn.handle_frame(&body[..cut]);
        conn.clear_output();
    }
    // And the intact frame still answers.
    conn.handle_frame(&body);
    assert!(!conn.output().is_empty());
}
