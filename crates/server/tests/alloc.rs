//! The hot-path acceptance test: after warm-up, a binary point read —
//! decode → registry lookup → `point_get` → encode — performs **zero**
//! heap allocations on the serving thread.
//!
//! A counting `#[global_allocator]` (per-thread counter, so the cluster's
//! pool workers don't pollute the measurement) wraps the system
//! allocator. The warm-up must saturate every lazily-grown buffer that
//! legitimately allocates early: the per-statement `RunMetrics` ring
//! (4096 samples) and the cluster's `LiveSampleSink` (65,536 samples,
//! dropped-not-grown once full) — hence the 72k warm requests.

use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::testkit::linear_predictor;
use piql_server::{BinaryConn, BinaryWire, Envelope, Request, SloConfig, StatementRegistry, Wire};
use piql_workloads::scadr::{self, ScadrConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: TLS may already be torn down during thread exit
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const WARM_REQUESTS: usize = 72_000;
const MEASURED_REQUESTS: usize = 2_000;

#[test]
// Rank tracking in `lock-order` builds keeps per-thread held-lock state
// (and captures backtraces), which allocates by design; the zero-alloc
// guarantee is a property of release builds, where the wrappers are
// pass-throughs.
#[cfg_attr(
    feature = "lock-order",
    ignore = "lock-order tracking allocates by design"
)]
fn warm_binary_point_reads_do_not_allocate() {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    scadr::setup(
        &db,
        &ScadrConfig {
            users_per_node: 20,
            thoughts_per_user: 5,
            subscriptions_per_user: 4,
            ..Default::default()
        },
        2,
    )
    .unwrap();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: false,
        },
    ));
    registry
        .register("point", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    assert!(
        registry.get("point").unwrap().fast_point().is_some(),
        "statement must qualify for the fast path"
    );

    // pre-encode request frames (hits and a miss) outside the measurement
    let wire = BinaryWire;
    let frames: Vec<Vec<u8>> = (0..40)
        .map(|i| {
            let name = if i == 13 {
                "absent-user".to_string() // a miss is a hot-path response too
            } else {
                scadr::username(i)
            };
            let mut frame = Vec::new();
            wire.encode_envelope(
                &Envelope {
                    id: None,
                    request: Request::Execute {
                        name: "point".into(),
                        params: vec![piql_core::value::Value::Varchar(name).into()],
                        cursor: None,
                    },
                },
                &mut frame,
            );
            frame.split_off(4) // body only, as the server's read loop delivers it
        })
        .collect();

    let mut conn = BinaryConn::new(registry.clone());
    for i in 0..WARM_REQUESTS {
        conn.handle_frame(&frames[i % frames.len()]);
        assert!(!conn.output().is_empty());
        conn.clear_output();
    }

    let before = allocs_on_this_thread();
    for i in 0..MEASURED_REQUESTS {
        conn.handle_frame(&frames[i % frames.len()]);
        conn.clear_output();
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(
        delta, 0,
        "warm point reads must not allocate ({delta} allocations across {MEASURED_REQUESTS} requests)"
    );

    // sanity: every measured request actually took the fast path
    let fast = registry
        .counters
        .fast_point_reads
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(fast as usize, WARM_REQUESTS + MEASURED_REQUESTS);
}
