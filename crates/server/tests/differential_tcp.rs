//! Differential satellite: every Table-1 query (TPC-W rows and the SCADr
//! rows) executed through the TCP protocol returns **byte-identical**
//! results to a direct `Database::execute` of the same registered
//! statement — the protocol encode/decode layer must be lossless.

use piql_core::plan::params::{ParamValue, Params};
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::protocol::row_to_json;
use piql_server::testkit::linear_predictor;
use piql_server::{Client, Json, PiqlServer, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use piql_workloads::tpcw::{self, TpcwConfig};
use std::sync::Arc;

fn table1_params(
    label: &str,
    n_customers: usize,
    n_items: usize,
    n_orders: usize,
) -> Vec<ParamValue> {
    let uname = || Value::Varchar(tpcw::customer_uname(3 % n_customers.max(1)));
    match label {
        "Home WI" | "Order Display WI Get Customer" | "Order Display WI Get Last Order" => {
            vec![uname().into()]
        }
        "Home WI (promotions)" => vec![ParamValue::Collection(
            [1, 5, 9, 12, 17]
                .iter()
                .map(|&i| Value::Int((i % n_items.max(1)) as i32))
                .collect(),
        )],
        "New Products WI" => vec![Value::Varchar(tpcw::SUBJECTS[2].to_string()).into()],
        "Product Detail WI" => vec![Value::Int((7 % n_items.max(1)) as i32).into()],
        "Search By Author WI" => vec![Value::Varchar(tpcw::SURNAMES[4].to_string()).into()],
        "Search By Title WI" => vec![Value::Varchar(tpcw::TITLE_WORDS[3].to_string()).into()],
        "Order Display WI Get OrderLines" => {
            vec![Value::Int(tpcw::initial_order_id(2, n_orders)).into()]
        }
        "Buy Request WI" => vec![Value::Int(1).into()],
        other => panic!("unmapped Table-1 label {other}"),
    }
}

#[test]
fn table1_queries_differential_tcp_vs_direct() {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));

    let tpcw_config = TpcwConfig {
        items: 40,
        customers_per_node: 20,
        orders_per_customer: 2,
        ..Default::default()
    };
    let (n_customers, n_items, n_orders) = tpcw::setup(&db, &tpcw_config, 2).unwrap();

    let scadr_config = ScadrConfig {
        users_per_node: 15,
        thoughts_per_user: 8,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    let n_users = scadr::setup(&db, &scadr_config, 2).unwrap();
    assert!(n_users > 0);

    let server = PiqlServer::start(
        db.clone(),
        linear_predictor(150, 40, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: false,
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // the full Table-1 set: all TPC-W rows plus the four SCADr read queries
    let q = scadr::queries(&scadr_config);
    let scadr_rows: Vec<(String, String, Vec<ParamValue>)> = vec![
        (
            "Users Followed".into(),
            q.users_followed.clone(),
            vec![Value::Varchar(scadr::username(2)).into()],
        ),
        (
            "My Thoughts".into(),
            q.recent_thoughts.clone(),
            vec![Value::Varchar(scadr::username(2)).into()],
        ),
        (
            "Thoughtstream".into(),
            q.thoughtstream.clone(),
            vec![Value::Varchar(scadr::username(2)).into()],
        ),
        (
            "Find User".into(),
            q.find_user.clone(),
            vec![Value::Varchar(scadr::username(5)).into()],
        ),
    ];
    let mut cases: Vec<(String, String, Vec<ParamValue>)> = tpcw::TABLE1_SQL
        .iter()
        .map(|(label, sql)| {
            (
                label.to_string(),
                sql.to_string(),
                table1_params(label, n_customers, n_items, n_orders),
            )
        })
        .collect();
    cases.extend(scadr_rows);

    let mut nonempty = 0;
    for (label, sql, params) in &cases {
        let verdict = client.prepare(label, sql).unwrap();
        assert_eq!(
            verdict.get("status").and_then(Json::as_str),
            Some("admitted"),
            "{label}"
        );

        // through the wire
        let raw = client
            .request(&piql_server::Request::Execute {
                name: label.clone(),
                params: params.clone(),
                cursor: None,
            })
            .unwrap();
        let wire_rows_json = raw.get("rows").unwrap().to_string();

        // direct, against the very statement the registry holds
        let statement = server.registry().get(label).unwrap();
        let mut p = Params::new();
        for (i, v) in params.iter().enumerate() {
            p.set(i, v.clone());
        }
        let mut session = Session::new();
        let direct = db.execute(&mut session, &statement.prepared(), &p).unwrap();
        let direct_rows_json = Json::Arr(
            direct
                .rows
                .iter()
                .map(|t| row_to_json(t.values()))
                .collect(),
        )
        .to_string();

        assert_eq!(
            wire_rows_json, direct_rows_json,
            "{label}: TCP bytes differ from direct execution"
        );
        if !direct.rows.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        nonempty >= 10,
        "most Table-1 queries should return rows on the loaded store ({nonempty})"
    );
}
