//! The closed prediction loop, end to end: live execution feeds the
//! models, and periodic re-validation keeps admission honest — statements
//! admitted against stale models are re-degraded or flagged after the
//! store drifts, **without restarting the server**, and recover when the
//! store speeds back up.

use piql_core::plan::params::{ParamValue, Params};
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{KvStore, LiveCluster, LiveConfig, LiveOpKind, Session};
use piql_predict::plan_thetas;
use piql_server::testkit::linear_predictor;
use piql_server::{Admission, Client, DriftAction, PiqlServer, SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;

const FIND_USER: &str = "SELECT * FROM users WHERE username = <u>";
const RECENT_THOUGHTS: &str =
    "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 100";

fn scadr_db() -> (Arc<LiveCluster>, Arc<Database<LiveCluster>>) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 30,
        thoughts_per_user: 12,
        subscriptions_per_user: 5,
        max_subscriptions: 100,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    (cluster, db)
}

fn registry(db: Arc<Database<LiveCluster>>, slo_ms: f64) -> Arc<StatementRegistry<LiveCluster>> {
    Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 3),
        SloConfig {
            slo_ms,
            interval_confidence: 1.0,
            allow_degrade: true,
        },
    ))
}

/// The acceptance scenario: a statement admitted under a fast store is
/// flagged by a `revalidate` sweep after injected latency drift — over
/// TCP, same server process throughout — and `stats` reports the refreshed
/// prediction alongside the observed quantiles. When the drift clears and
/// the slow interval rotates out, the statement recovers.
#[test]
fn drift_flags_statement_over_tcp_without_restart() {
    let (cluster, db) = scadr_db();
    let reg = registry(db, 20.0);
    let server = PiqlServer::start_with_registry(reg.clone(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let prep = client.prepare("find_user", FIND_USER).unwrap();
    assert_eq!(
        prep.get("status").and_then(|j| j.as_str()),
        Some("admitted"),
        "fast store + linear model admits the point lookup: {prep}"
    );
    let user: Vec<ParamValue> = vec![Value::Varchar(scadr::username(3)).into()];

    // warm executions under the fast store feed fast live samples
    for _ in 0..3 {
        client.execute("find_user", &user, None).unwrap();
    }
    let sweep = client.revalidate().unwrap();
    assert!(
        sweep
            .get("samples_folded")
            .and_then(|j| j.as_f64())
            .unwrap()
            >= 1.0,
        "live execution must have produced samples: {sweep}"
    );
    assert_eq!(sweep.get("flagged").and_then(|j| j.as_f64()), Some(0.0));

    // the store drifts: 40 ms per request on the same running cluster
    cluster.set_request_delay_us(40_000);
    for _ in 0..3 {
        client.execute("find_user", &user, None).unwrap();
    }
    let sweep = client.revalidate().unwrap();
    assert_eq!(
        sweep.get("flagged").and_then(|j| j.as_f64()),
        Some(1.0),
        "refreshed models must flag the drifted statement: {sweep}"
    );

    // stats: refreshed prediction over the SLO, next to observed quantiles
    let stats = client.stats().unwrap();
    let statements = stats.get("statements").and_then(|j| j.as_arr()).unwrap();
    let s = statements
        .iter()
        .find(|s| s.get("name").and_then(|j| j.as_str()) == Some("find_user"))
        .unwrap();
    assert_eq!(s.get("status").and_then(|j| j.as_str()), Some("flagged"));
    let predicted = s.get("predicted_p99_ms").and_then(|j| j.as_f64()).unwrap();
    assert!(
        predicted > 20.0,
        "refreshed prediction {predicted} over SLO"
    );
    let observed = s.get("p99_ms").and_then(|j| j.as_f64()).unwrap();
    assert!(observed > 20.0, "observed p99 {observed} shows the drift");
    let drift = s.get("drift").and_then(|j| j.as_arr()).unwrap();
    assert!(
        drift
            .iter()
            .any(|d| d.get("action").and_then(|j| j.as_str()) == Some("flagged")),
        "drift history records the flag: {drift:?}"
    );
    // flagged statements stay executable (drift is an insight, not an outage)
    client.execute("find_user", &user, None).unwrap();

    // drift clears; after every slow observation rotates out of the
    // 3-interval ring (the post-flag execute above left one slow sample in
    // the sink, so the first recovery interval is still mixed — hence 4
    // sweeps), the statement recovers to admitted — still the same server
    cluster.set_request_delay_us(0);
    for _ in 0..4 {
        client.execute("find_user", &user, None).unwrap();
        client.revalidate().unwrap();
    }
    let stats = client.stats().unwrap();
    let statements = stats.get("statements").and_then(|j| j.as_arr()).unwrap();
    let s = statements
        .iter()
        .find(|s| s.get("name").and_then(|j| j.as_str()) == Some("find_user"))
        .unwrap();
    assert_eq!(
        s.get("status").and_then(|j| j.as_str()),
        Some("admitted"),
        "recovered after the slow interval aged out: {s}"
    );
    assert!(
        stats
            .get("drift_recovered")
            .and_then(|j| j.as_f64())
            .unwrap()
            >= 1.0
    );
}

/// Re-degradation: when only the large-fan-out grid points drift slow, the
/// sweep tightens the statement to the advisor's feasible smaller LIMIT
/// instead of flagging it; when the drift clears it relaxes back to the
/// original bound.
#[test]
fn drift_redegrades_then_relaxes_bounded_statement() {
    let (_cluster, db) = scadr_db();
    let reg = registry(db, 50.0);
    let verdict = reg.register("recent", RECENT_THOUGHTS).unwrap();
    assert!(
        matches!(verdict, Admission::Admitted { .. }),
        "α=100 scan ≈ 10 ms under the seed model: {verdict:?}"
    );

    // the statement's exact model key (op + β bucket as compiled)
    let prepared = reg.get("recent").unwrap().prepared();
    let thetas = plan_thetas(&prepared.compiled);
    assert_eq!(thetas.len(), 1, "primary-index scan only: {thetas:?}");
    let scan_key = thetas[0].key;
    assert_eq!(scan_key.alpha_c, 100);

    // live drift hits only large fan-outs: α ≥ 100 explodes to 200 ms,
    // smaller probes stay fast — exactly the shape where a tighter LIMIT
    // is the right answer
    let models = reg.models();
    for &alpha in piql_predict::ALPHA_GRID {
        let key = piql_predict::ModelKey {
            alpha_c: alpha,
            ..scan_key
        };
        let micros = if alpha >= 100 { 200_000 } else { 1_000 };
        for _ in 0..20 {
            models.record_live(key, micros);
        }
    }
    let summary = reg.revalidate();
    assert_eq!(summary.redegraded, 1, "{summary:?}");
    let statement = reg.get("recent").unwrap();
    let admission = statement.admission();
    match &admission {
        Admission::Degraded {
            predicted_p99_ms,
            original_limit,
            limit,
        } => {
            assert_eq!(*original_limit, 100);
            assert!(*limit < 100, "tightened, got {limit}");
            assert!(
                *predicted_p99_ms <= 50.0,
                "tightened prediction meets the SLO: {predicted_p99_ms}"
            );
        }
        other => panic!("expected re-degradation, got {other:?}"),
    }
    assert_eq!(reg.counters.drift_redegraded.load(Ordering::Relaxed), 1);

    // the tightened bound is enforced at execution
    let limit = match admission {
        Admission::Degraded { limit, .. } => limit,
        _ => unreachable!(),
    };
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(1)));
    let result = reg.execute(&mut session, "recent", &params, None).unwrap();
    assert!(result.rows.len() as u64 <= limit);

    // drift clears: fast samples for every α; after 3 rotations the slow
    // interval ages out and the sweep relaxes back to the original LIMIT
    for _ in 0..3 {
        for &alpha in piql_predict::ALPHA_GRID {
            let key = piql_predict::ModelKey {
                alpha_c: alpha,
                ..scan_key
            };
            for _ in 0..20 {
                models.record_live(key, 1_000);
            }
        }
        reg.revalidate();
    }
    let statement = reg.get("recent").unwrap();
    match statement.admission() {
        Admission::Admitted { .. } => {}
        other => panic!("expected relaxation back to admitted, got {other:?}"),
    }
    assert!(reg.counters.drift_relaxed.load(Ordering::Relaxed) >= 1);
    let history: Vec<DriftAction> = statement.drift_history().iter().map(|d| d.action).collect();
    assert!(history.contains(&DriftAction::Redegraded), "{history:?}");
    assert!(history.contains(&DriftAction::Relaxed), "{history:?}");
}

/// Satellite pin: execution samples are recorded under the statement's
/// root remote operator kind, so per-kind quantiles mean something.
#[test]
fn execution_samples_carry_the_statement_kind() {
    let (_cluster, db) = scadr_db();
    let reg = registry(db, 1_000.0);
    const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
         WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
         ORDER BY thoughts.timestamp DESC LIMIT 10";
    reg.register("find_user", FIND_USER).unwrap();
    reg.register("thoughtstream", THOUGHTSTREAM).unwrap();

    let find_user = reg.get("find_user").unwrap();
    let thoughtstream = reg.get("thoughtstream").unwrap();
    assert_eq!(find_user.kind, LiveOpKind::IndexScan, "root op");
    assert_eq!(find_user.kind_name(), "IndexScan");
    assert_eq!(
        thoughtstream.kind,
        LiveOpKind::SortedIndexJoin,
        "root op is the SortedIndexJoin"
    );
    assert_eq!(thoughtstream.kind_name(), "SortedIndexJoin");

    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(1)));
    reg.execute(&mut session, "find_user", &params, None)
        .unwrap();
    reg.execute(&mut session, "thoughtstream", &params, None)
        .unwrap();

    // every sample carries its statement's kind — the bug this pins was a
    // hard-coded `kind: 0` making per-kind breakdowns meaningless
    for statement in [&find_user, &thoughtstream] {
        let kind = statement.kind.index();
        let metrics = statement.metrics.lock();
        assert!(!metrics.samples.is_empty());
        assert!(metrics.samples.iter().all(|s| s.kind == kind));
    }
}

/// The background `Revalidator` closes the loop on its own: with periodic
/// sweeps enabled, drift is flagged without any client ever sending
/// `revalidate`.
#[test]
fn background_revalidator_flags_drift_unprompted() {
    let (cluster, db) = scadr_db();
    let reg = registry(db, 20.0);
    let mut server = PiqlServer::start_with_registry(reg.clone(), "127.0.0.1:0").unwrap();
    server.enable_revalidation(std::time::Duration::from_millis(40));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.prepare("find_user", FIND_USER).unwrap();
    let user: Vec<ParamValue> = vec![Value::Varchar(scadr::username(5)).into()];

    cluster.set_request_delay_us(40_000);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        client.execute("find_user", &user, None).unwrap();
        if reg.get("find_user").unwrap().admission().verdict() == "flagged" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background sweeps never flagged the drifted statement \
             (sweeps so far: {})",
            reg.sweep_count()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(reg.sweep_count() >= 1);
    drop(server); // joins the revalidator thread
}

/// A sweep with no drift performs zero storage operations — re-validation
/// is pure compile + predict, like admission itself.
#[test]
fn steady_sweep_issues_no_storage_operations() {
    let (cluster, db) = scadr_db();
    let reg = registry(db, 50.0);
    reg.register("find_user", FIND_USER).unwrap();
    let ops_before = cluster.op_count();
    let summary = reg.revalidate();
    assert_eq!(summary.statements, 1);
    assert_eq!(summary.steady, 1);
    assert_eq!(
        summary.samples_folded, 0,
        "nothing executed, nothing drained"
    );
    assert!(!summary.models_rotated);
    assert_eq!(
        cluster.op_count(),
        ops_before,
        "re-validation must not touch storage"
    );
}

/// Live samples flow kv → sink → drain: executing through the registry on
/// a `LiveCluster` buffers tagged operator samples that a sweep consumes.
#[test]
fn live_execution_fills_and_sweep_drains_the_sink() {
    let (cluster, db) = scadr_db();
    let reg = registry(db, 1_000.0);
    reg.register("find_user", FIND_USER).unwrap();
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(2)));
    for _ in 0..5 {
        reg.execute(&mut session, "find_user", &params, None)
            .unwrap();
    }
    assert!(
        cluster.sample_sink().recorded() >= 5,
        "each execution records at least its scan round"
    );
    let summary = reg.revalidate();
    assert!(summary.samples_folded >= 5);
    assert!(summary.models_rotated);
    assert!(cluster.drain_samples().is_empty(), "sweep drained the sink");
    assert_eq!(
        reg.counters.samples_folded.load(Ordering::Relaxed),
        summary.samples_folded
    );
}
