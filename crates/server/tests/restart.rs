//! Restart-identity conformance: a durable stack that is `kill -9`ed
//! mid-workload and reopened must come back with the same data, the same
//! registered statements (re-admitted with the same verdicts), and the
//! same predicted p99s — and no write that was acknowledged strictly
//! before the crash may be missing afterwards.

use piql_core::plan::params::Params;
use piql_core::value::Value;
use piql_engine::{Database, DbError};
use piql_kv::{LiveCluster, Session};
use piql_server::testkit::linear_predictor;
use piql_server::{open_durable, DurableOptions, DurableStack, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FIND_USER: &str = "SELECT * FROM users WHERE username = <u>";
const RECENT: &str = "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 100";
const POST_THOUGHT: &str = "INSERT INTO thoughts (owner, timestamp, text) VALUES (<u>, <ts>, <t>)";

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piql-restart-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic boot routine both process lifetimes share: same
/// schema, same seed rows, same namespace creation order every boot.
fn bootstrap(db: &Arc<Database<LiveCluster>>) -> Result<(), DbError> {
    let config = ScadrConfig {
        users_per_node: 20,
        thoughts_per_user: 6,
        subscriptions_per_user: 4,
        max_subscriptions: 100,
        ..Default::default()
    };
    scadr::setup(db, &config, 2).map(|_| ())
}

fn options(dir: &Path, slo_ms: f64) -> DurableOptions {
    let mut opts = DurableOptions::new(dir);
    opts.slo = SloConfig {
        slo_ms,
        interval_confidence: 1.0,
        allow_degrade: true,
    };
    opts
}

fn open(dir: &Path, slo_ms: f64) -> DurableStack {
    open_durable(
        options(dir, slo_ms),
        linear_predictor(200, 100, 3),
        bootstrap,
    )
    .expect("open durable stack")
}

fn post_thought(stack: &DurableStack, session: &mut Session, user: usize, ts: i64, text: &str) {
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(user)));
    params.set(1, Value::Timestamp(ts));
    params.set(2, Value::Varchar(text.to_string()));
    stack
        .registry
        .execute_dml(session, POST_THOUGHT, &params)
        .expect("insert thought");
}

fn user_params(user: usize) -> Params {
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(user)));
    params
}

/// Execute `recent` for `user` through pagination, returning each page's
/// rows (cursor results included so restart identity covers cursors too).
fn paginate_recent(stack: &DurableStack, user: usize) -> Vec<Vec<piql_core::tuple::Tuple>> {
    let params = user_params(user);
    let mut session = Session::new();
    let mut pages = Vec::new();
    let mut cursor = None;
    loop {
        let result = stack
            .registry
            .execute(&mut session, "recent", &params, cursor.as_ref())
            .expect("execute recent");
        pages.push(result.rows);
        match result.cursor {
            Some(c) => cursor = Some(c),
            None => return pages,
        }
    }
}

/// The acceptance demo as a test: workload → `kill -9` → restart →
/// same data (scan + cursor results), same registered statements, same
/// predicted p99s, zero client re-registration.
#[test]
fn restart_preserves_data_statements_and_predictions() {
    let dir = test_dir("identity");

    // ------------------------------------------- first process lifetime
    let first = open(&dir, 5.0);
    assert!(!first.report.snapshot_loaded, "fresh directory");
    assert!(first.readmissions.is_empty(), "nothing to re-admit yet");

    // the point lookup admits; the 100-row scan is over the 5 ms SLO and
    // is admitted with an advisor-degraded LIMIT
    let a = first.registry.register("find_user", FIND_USER).unwrap();
    assert_eq!(a.verdict(), "admitted", "{a:?}");
    let d = first.registry.register("recent", RECENT).unwrap();
    assert_eq!(d.verdict(), "degraded", "{d:?}");

    // runtime DDL goes through the stack so it survives the restart
    first
        .execute_ddl("CREATE INDEX thoughts_by_text ON thoughts (text, owner, timestamp)")
        .expect("runtime CREATE INDEX");

    // live workload: executions feed samples, a revalidation sweep folds
    // them and rotates the models (journaling the closed interval)
    let mut session = Session::new();
    for user in 0..4 {
        let params = user_params(user);
        first
            .registry
            .execute(&mut session, "find_user", &params, None)
            .unwrap();
        first
            .registry
            .execute(&mut session, "recent", &params, None)
            .unwrap();
    }
    first.registry.revalidate();

    // writes before the checkpoint...
    for i in 0..25 {
        post_thought(&first, &mut session, 1, 2_000_000_000 + i, "pre-snapshot");
    }
    let summary = first.snapshot().expect("mid-workload checkpoint");
    assert!(summary.entries > 0);

    // ...writes and a second model rotation after it (replayed from the
    // WAL tail on top of the snapshot's model checkpoint)
    for i in 0..25 {
        post_thought(&first, &mut session, 2, 3_000_000_000 + i, "post-snapshot");
    }
    for user in 0..4 {
        let params = user_params(user);
        first
            .registry
            .execute(&mut session, "recent", &params, None)
            .unwrap();
    }
    first.registry.revalidate();

    // pre-crash ground truth
    let data_before = first.cluster.export_namespaces();
    let pages_before_1 = paginate_recent(&first, 1);
    let pages_before_2 = paginate_recent(&first, 2);
    let mut statements_before: Vec<(String, String, &'static str, f64)> = first
        .registry
        .list()
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.sql.clone(),
                s.admission().verdict(),
                s.last_predicted_p99_ms(),
            )
        })
        .collect();
    statements_before.sort_by(|a, b| a.0.cmp(&b.0));

    first.simulate_crash();
    drop(first);

    // ----------------------------------------- second process lifetime
    let second = open(&dir, 5.0);
    assert!(second.report.snapshot_loaded, "checkpoint found");
    assert_eq!(second.report.statements, 2, "both statements recovered");
    assert!(
        second.report.wal_records > 0,
        "post-snapshot tail replayed: {:?}",
        second.report
    );
    assert_eq!(
        second.report.ddl, 1,
        "runtime CREATE INDEX replayed: {:?}",
        second.report
    );

    // zero re-registration: both statements are back, re-admitted at boot
    // with the same verdicts
    let mut readmissions: Vec<(String, String)> = second
        .readmissions
        .iter()
        .map(|r| (r.name.clone(), r.verdict.clone()))
        .collect();
    readmissions.sort();
    assert_eq!(
        readmissions,
        vec![
            ("find_user".to_string(), "admitted".to_string()),
            ("recent".to_string(), "degraded".to_string()),
        ]
    );

    // same data
    assert_eq!(second.cluster.export_namespaces(), data_before);

    // same statements, same predicted p99s (the recovered models are the
    // checkpoint plus every journaled rotation — bit-identical, so the
    // boot-time re-prediction lands on exactly the pre-crash numbers)
    let mut statements_after: Vec<(String, String, &'static str, f64)> = second
        .registry
        .list()
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.sql.clone(),
                s.admission().verdict(),
                s.last_predicted_p99_ms(),
            )
        })
        .collect();
    statements_after.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(statements_after, statements_before);

    // same scan + cursor results
    assert_eq!(paginate_recent(&second, 1), pages_before_1);
    assert_eq!(paginate_recent(&second, 2), pages_before_2);

    // and the recovered stack is live: new durable writes are accepted
    let mut session = Session::new();
    post_thought(&second, &mut session, 3, 4_000_000_000, "after recovery");
    let rows: usize = paginate_recent(&second, 3).iter().map(Vec::len).sum();
    assert!(rows > 0);
    second.close();
}

/// Once the WAL is dead, the wire protocol must stop acknowledging DML:
/// the write still applies in memory, but the response is an error (and
/// the `stats` durability block reports `wal_dead`) — durability never
/// silently degrades to memory-only.
#[test]
fn dead_wal_fails_dml_acknowledgements() {
    use piql_core::plan::params::ParamValue;
    use piql_server::protocol::Request;
    use piql_server::server::handle_request;
    use piql_server::Json;

    let dir = test_dir("deadwal");
    let stack = open(&dir, 1_000_000.0);
    let mut session = Session::new();
    let dml = |user: usize, ts: i64| Request::Dml {
        sql: POST_THOUGHT.to_string(),
        params: vec![
            ParamValue::Scalar(Value::Varchar(scadr::username(user))),
            ParamValue::Scalar(Value::Timestamp(ts)),
            ParamValue::Scalar(Value::Varchar("t".to_string())),
        ],
    };

    let healthy = handle_request(&dml(0, 1), &mut session, &stack.registry);
    assert_eq!(healthy.get("ok").and_then(Json::as_bool), Some(true));
    let stats = handle_request(&Request::Stats, &mut session, &stack.registry);
    let wal_dead = |stats: &Json| {
        stats
            .get("durability")
            .and_then(|d| d.get("wal_dead"))
            .and_then(Json::as_bool)
    };
    assert_eq!(wal_dead(&stats), Some(false));

    stack.simulate_crash();

    let degraded = handle_request(&dml(0, 2), &mut session, &stack.registry);
    assert_eq!(
        degraded.get("ok").and_then(Json::as_bool),
        Some(false),
        "a non-durable write must not be acknowledged: {degraded}"
    );
    let error = degraded.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("not durable"), "got: {error}");
    let stats = handle_request(&Request::Stats, &mut session, &stack.registry);
    assert_eq!(wal_dead(&stats), Some(true));
}

/// Acknowledged-write durability: writers hammer the stack concurrently,
/// the process "dies" mid-workload, and every DML that was acknowledged
/// strictly before the crash must be present after recovery.
#[test]
fn no_acknowledged_write_is_lost_across_a_crash() {
    let dir = test_dir("acked");
    let stack = Arc::new(open(&dir, 1_000_000.0));

    const WRITERS: usize = 8;
    const CAP: i64 = 1200; // keeps the per-writer key range under RECENT_WIDE's LIMIT
    let crashed = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let stack = stack.clone();
        let crashed = crashed.clone();
        handles.push(std::thread::spawn(move || {
            let mut session = Session::new();
            let mut acked: i64 = 0;
            for i in 0..CAP {
                let mut params = Params::new();
                params.set(0, Value::Varchar(scadr::username(w)));
                params.set(1, Value::Timestamp(5_000_000_000 + i));
                params.set(2, Value::Varchar(format!("w{w}-{i}")));
                if stack
                    .registry
                    .execute_dml(&mut session, POST_THOUGHT, &params)
                    .is_err()
                {
                    break;
                }
                // count the write as acknowledged only if the crash flag
                // was still clear when the acknowledgement came back: the
                // flag is raised before the simulated kill, so such an ack
                // can only have come from a completed group commit
                if crashed.load(Ordering::SeqCst) {
                    break;
                }
                acked = i + 1;
            }
            acked
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(80));
    crashed.store(true, Ordering::SeqCst);
    stack.simulate_crash();
    let acked: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let total: i64 = acked.iter().sum();
    assert!(total > 0, "writers must have landed some acks: {acked:?}");
    drop(stack);

    let recovered = open(&dir, 1_000_000.0);
    recovered
        .registry
        .register(
            "recent_wide",
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 1500",
        )
        .unwrap();
    let mut session = Session::new();
    for (w, &n) in acked.iter().enumerate() {
        let result = recovered
            .registry
            .execute(&mut session, "recent_wide", &user_params(w), None)
            .unwrap();
        let present: std::collections::BTreeSet<i64> = result
            .rows
            .iter()
            .filter_map(|row| match row.get(1) {
                Some(Value::Timestamp(ts)) => Some(*ts - 5_000_000_000),
                _ => None,
            })
            .collect();
        for i in 0..n {
            assert!(
                present.contains(&i),
                "writer {w}: write {i} was acknowledged before the crash \
                 (acked through {n}) but is missing after recovery"
            );
        }
    }
    recovered.close();
}
