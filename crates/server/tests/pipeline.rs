//! End-to-end tests for the pipelined & batched wire protocol
//! (PROTOCOL.md §5–6): id echo, completion-order responses for tagged
//! requests (a slow `execute` must not head-of-line-block a cheap
//! `stats`), strict arrival-order for legacy id-less requests on the
//! same rebuilt server, batch positional results with mid-batch errors,
//! and the client `Pipeline` / `execute_batch` APIs.

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::protocol::{envelope_to_line, request_to_line};
use piql_server::testkit::linear_predictor;
use piql_server::{
    decode_page, Client, Envelope, Json, PiqlServer, Request, RequestId, SloConfig,
    StatementRegistry,
};
use piql_workloads::scadr::{self, ScadrConfig};
use std::io::Write;
use std::sync::Arc;

fn permissive_slo() -> SloConfig {
    SloConfig {
        slo_ms: 1e9,
        interval_confidence: 1.0,
        allow_degrade: false,
    }
}

fn start_server() -> (Arc<LiveCluster>, PiqlServer) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 20,
        thoughts_per_user: 7,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        permissive_slo(),
    ));
    let server = PiqlServer::start_with_dispatch(registry, "127.0.0.1:0", 8).unwrap();
    (cluster, server)
}

fn uname_param(i: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i)).into()]
}

fn execute_req(name: &str, i: usize) -> Request {
    Request::Execute {
        name: name.into(),
        params: uname_param(i),
        cursor: None,
    }
}

/// Tagged requests are answered in completion order: a slow `execute`
/// (50 ms injected per storage request) pipelined *before* a cheap
/// `stats` must be answered *after* it.
#[test]
fn tagged_requests_complete_out_of_order() {
    let (cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    cluster.set_request_delay_us(50_000);
    let mut raw = client.raw_stream().unwrap();
    let slow = envelope_to_line(&Envelope {
        id: Some(RequestId::Str("slow-execute".into())),
        request: execute_req("find", 3),
    });
    let fast = envelope_to_line(&Envelope {
        id: Some(RequestId::Int(2)),
        request: Request::Stats,
    });
    raw.write_all(format!("{slow}\n{fast}\n").as_bytes())
        .unwrap();
    raw.flush().unwrap();

    // first response on the wire is the stats call — the slow execute is
    // still sleeping in the store when it completes
    let first = client.raw_read_line().unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("id").and_then(Json::as_i64), Some(2));
    assert!(first.get("statements").is_some(), "stats answered first");

    let second = client.raw_read_line().unwrap();
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        second.get("id").and_then(Json::as_str),
        Some("slow-execute"),
        "the id is echoed verbatim"
    );
    let page = decode_page(&second).unwrap();
    assert_eq!(page.rows.len(), 1);
    cluster.set_request_delay_us(0);
}

/// The same shape without ids must keep today's strict ordering: the
/// slow execute is answered first even though stats completed long ago.
#[test]
fn untagged_requests_stay_in_arrival_order() {
    let (cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    cluster.set_request_delay_us(30_000);
    let mut raw = client.raw_stream().unwrap();
    let slow = request_to_line(&execute_req("find", 3));
    let fast = request_to_line(&Request::Stats);
    raw.write_all(format!("{slow}\n{fast}\n").as_bytes())
        .unwrap();
    raw.flush().unwrap();

    let first = client.raw_read_line().unwrap();
    assert!(
        first.get("rows").is_some(),
        "legacy ordering: the execute answers first"
    );
    assert!(first.get("id").is_none(), "id-less requests echo no id");
    let second = client.raw_read_line().unwrap();
    assert!(second.get("statements").is_some());
    cluster.set_request_delay_us(0);
}

/// A batch runs its sub-requests sequentially on one session — a `dml`
/// is visible to the `execute` after it — and a failing sub-request
/// yields an error entry in place without aborting the rest.
#[test]
fn batch_mid_error_answers_in_place_and_continues() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare(
            "mine",
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 100",
        )
        .unwrap();

    let results = client
        .execute_batch(&[
            Request::Dml {
                sql: "INSERT INTO thoughts (owner, timestamp, text) VALUES (<u>, <ts>, <txt>)"
                    .into(),
                params: vec![
                    Value::Varchar(scadr::username(0)).into(),
                    Value::Timestamp(9_999_999_999_999_999).into(),
                    Value::Varchar("batched".into()).into(),
                ],
            },
            execute_req("no-such-statement", 0),
            execute_req("mine", 0),
        ])
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("ok").and_then(Json::as_bool), Some(true));
    // the mid-batch failure answers in place...
    assert_eq!(results[1].get("ok").and_then(Json::as_bool), Some(false));
    assert!(results[1]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown statement"));
    // ...and the read after it still ran, seeing the batch's own write
    let page = decode_page(&results[2]).unwrap();
    assert_eq!(
        page.rows[0].get(1),
        Some(&Value::Timestamp(9_999_999_999_999_999)),
        "newest thought is the one this batch inserted"
    );

    // the connection is still perfectly usable, and the unknown-statement
    // miss never reached an executor (exec_errors counts execution
    // failures, not registry misses)
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("exec_errors").and_then(Json::as_i64), Some(0));
    assert_eq!(stats.get("executed").and_then(Json::as_i64), Some(1));
}

/// `Pipeline`: N statements queued locally, one write, positional
/// results identical to N sequential round trips.
#[test]
fn pipeline_returns_positional_results() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    // sequential reference
    let expected: Vec<_> = (0..12)
        .map(|i| client.execute("find", &uname_param(i), None).unwrap())
        .collect();

    let mut pipeline = client.pipeline();
    for i in 0..12 {
        assert_eq!(pipeline.queue_execute("find", &uname_param(i)), i);
    }
    assert_eq!(pipeline.len(), 12);
    let responses = pipeline.flush().unwrap();
    assert!(pipeline.is_empty(), "flushed pipeline is reusable");
    let pages: Vec<_> = responses.iter().map(|r| decode_page(r).unwrap()).collect();
    assert_eq!(pages, expected, "positional results match sequential runs");

    // a reused pipeline keeps working (ids keep incrementing)
    let mut pipeline = client.pipeline();
    pipeline.queue(&Request::Stats);
    pipeline.queue_execute("find", &uname_param(5));
    let responses = pipeline.flush().unwrap();
    assert!(responses[0].get("statements").is_some());
    assert_eq!(decode_page(&responses[1]).unwrap(), expected[5]);
}

/// A pipeline whose middle request fails still returns every response,
/// the failure in its own slot.
#[test]
fn pipeline_carries_per_request_errors_positionally() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    let mut pipeline = client.pipeline();
    pipeline.queue_execute("find", &uname_param(1));
    pipeline.queue_execute("missing", &uname_param(1));
    pipeline.queue_execute("find", &uname_param(2));
    let responses = pipeline.flush().unwrap();
    assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(responses[2].get("ok").and_then(Json::as_bool), Some(true));
}

/// A malformed line that still carries a parseable id gets its error
/// echoed with that id, so a pipelining client can correlate it.
#[test]
fn malformed_tagged_line_echoes_the_id() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut raw = client.raw_stream().unwrap();
    raw.write_all(b"{\"cmd\":\"nope\",\"id\":77}\n").unwrap();
    raw.flush().unwrap();
    let response = client.raw_read_line().unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(response.get("id").and_then(Json::as_i64), Some(77));
}

/// Tagged and untagged requests interleaved on one connection: the
/// untagged ones preserve their relative order among themselves, and
/// every response arrives exactly once.
#[test]
fn mixed_lanes_answer_every_request_once() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    let mut raw = client.raw_stream().unwrap();
    let mut wire = String::new();
    // 10 untagged (ordered lane) interleaved with 10 tagged
    for i in 0..10 {
        wire.push_str(&request_to_line(&execute_req("find", i)));
        wire.push('\n');
        wire.push_str(&envelope_to_line(&Envelope {
            id: Some(RequestId::Int(100 + i as i64)),
            request: execute_req("find", 20 + i),
        }));
        wire.push('\n');
    }
    raw.write_all(wire.as_bytes()).unwrap();
    raw.flush().unwrap();

    let mut untagged_seen = Vec::new();
    let mut tagged_seen = Vec::new();
    for _ in 0..20 {
        let response = client.raw_read_line().unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let page = decode_page(&response).unwrap();
        let uname = match page.rows[0].get(0) {
            Some(Value::Varchar(s)) => s.clone(),
            other => panic!("unexpected first column {other:?}"),
        };
        match response.get("id").and_then(Json::as_i64) {
            Some(id) => tagged_seen.push((id, uname)),
            None => untagged_seen.push(uname),
        }
    }
    // untagged responses came back in arrival order...
    let expected_untagged: Vec<String> = (0..10).map(scadr::username).collect();
    assert_eq!(untagged_seen, expected_untagged);
    // ...and every tagged request was answered exactly once, correctly
    tagged_seen.sort();
    let expected_tagged: Vec<(i64, String)> = (0..10)
        .map(|i| (100 + i as i64, scadr::username(20 + i as usize)))
        .collect();
    assert_eq!(tagged_seen, expected_tagged);
}

/// 100 id-less requests pipelined at once cross the serial drainer's
/// re-queue boundary (32 jobs per batch) several times — order must hold
/// across drainer continuations.
#[test]
fn long_untagged_pipelines_stay_ordered_across_drain_batches() {
    let (_cluster, server) = start_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    let mut raw = client.raw_stream().unwrap();
    let mut wire = String::new();
    let order: Vec<usize> = (0..100).map(|k| (k * 7) % 40).collect();
    for &i in &order {
        wire.push_str(&request_to_line(&execute_req("find", i)));
        wire.push('\n');
    }
    raw.write_all(wire.as_bytes()).unwrap();
    raw.flush().unwrap();

    for &i in &order {
        let response = client.raw_read_line().unwrap();
        let page = decode_page(&response).unwrap();
        assert_eq!(
            page.rows[0].get(0),
            Some(&Value::Varchar(scadr::username(i))),
            "in-order across drainer re-queues"
        );
    }
}

/// `handle_line`/`handle_request` (the embedder API) answer batches too.
#[test]
fn embedder_handle_line_supports_batch() {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    scadr::setup(
        &db,
        &ScadrConfig {
            users_per_node: 4,
            thoughts_per_user: 2,
            subscriptions_per_user: 1,
            ..Default::default()
        },
        1,
    )
    .unwrap();
    let registry = StatementRegistry::new(db, linear_predictor(200, 100, 2), permissive_slo());
    registry
        .register("find", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    let mut session = Session::new();
    let response = piql_server::server::handle_line(
        &request_to_line(&Request::Batch {
            requests: vec![execute_req("find", 0), Request::Stats],
        }),
        &mut session,
        &registry,
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let results = response.get("results").and_then(Json::as_arr).unwrap();
    assert_eq!(results.len(), 2);
    assert!(results[0].get("rows").is_some());
    assert!(results[1].get("statements").is_some());
}
