//! Property tests for the hand-rolled protocol JSON: document round
//! trips (strings that need escaping included), and the no-panic
//! guarantee on truncated / mangled inputs — a hostile or cut-off line
//! must surface `JsonError`, never kill a connection handler.

use piql_server::json::{parse, Json};
use proptest::prelude::*;

/// Strings mixing ASCII, escapes-required chars, control chars, wide BMP
/// chars, and (sometimes) an astral char that needs a surrogate pair in
/// `\u` form.
fn string_content() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(any::<char>(), 0..16),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(chars, quoteish, astral)| {
            let mut s: String = chars.into_iter().collect();
            if quoteish {
                s.push('"');
                s.push('\\');
                s.push('\n');
                s.push('\u{0007}');
            }
            if astral {
                s.push('😀');
                s.push('🦀');
            }
            s
        })
}

/// A scalar JSON value whose serialization round-trips exactly.
fn scalar() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        any::<f64>().prop_map(|f| Json::Float(if f.is_finite() { f } else { 0.0 })),
        string_content().prop_map(Json::Str),
    ]
}

/// A bounded-depth document: scalars, arrays of scalars, and objects of
/// scalars/arrays (the shapes the wire protocol actually produces).
fn document() -> impl Strategy<Value = Json> {
    prop_oneof![
        scalar(),
        prop::collection::vec(scalar(), 0..6).prop_map(Json::Arr),
        prop::collection::btree_map(string_content(), scalar(), 0..6).prop_map(Json::Obj),
        (
            prop::collection::vec(scalar(), 0..4),
            prop::collection::btree_map(string_content(), scalar(), 0..4),
        )
            .prop_map(|(arr, obj)| { Json::Arr(vec![Json::Arr(arr), Json::Obj(obj), Json::Null]) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → parse is the identity for every document shape the
    /// protocol emits.
    #[test]
    fn documents_roundtrip(doc in document()) {
        let text = doc.to_string();
        let reparsed = parse(&text);
        prop_assert_eq!(reparsed.as_ref(), Ok(&doc), "text: {}", text);
    }

    /// Every prefix of a valid document either parses or returns a
    /// `JsonError` — truncation can never panic. (The `parse` call itself
    /// is the assertion: a panic fails the test.)
    #[test]
    fn truncated_documents_never_panic(doc in document(), cut in any::<prop::sample::Index>()) {
        let text = doc.to_string();
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        if !boundaries.is_empty() {
            let at = boundaries[cut.index(boundaries.len())];
            let _ = parse(&text[..at]);
        }
        // and with a trailing escape introducer, the classic cut-off point
        let _ = parse(&format!("{}\\", text));
        let _ = parse(&format!("\"{}", text));
        prop_assert!(true);
    }

    /// Strings with every kind of awkward content survive the escape
    /// writer and parser exactly.
    #[test]
    fn string_escapes_roundtrip(s in string_content()) {
        let j = Json::Str(s.clone());
        let reparsed = parse(&j.to_string());
        prop_assert_eq!(reparsed, Ok(j));
    }
}
