//! Property tests for the hand-rolled protocol JSON: document round
//! trips (strings that need escaping included), the no-panic guarantee
//! on truncated / mangled inputs — a hostile or cut-off line must
//! surface `JsonError`, never kill a connection handler — and the
//! request-envelope layer: arbitrary ids echo through serialize→parse,
//! and batches of arbitrary requests round-trip positionally.

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_server::json::{parse, Json};
use piql_server::protocol::{attach_id, envelope_to_line, ok_response, parse_envelope};
use piql_server::{Envelope, Request, RequestId};
use proptest::prelude::*;

/// Strings mixing ASCII, escapes-required chars, control chars, wide BMP
/// chars, and (sometimes) an astral char that needs a surrogate pair in
/// `\u` form.
fn string_content() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(any::<char>(), 0..16),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(chars, quoteish, astral)| {
            let mut s: String = chars.into_iter().collect();
            if quoteish {
                s.push('"');
                s.push('\\');
                s.push('\n');
                s.push('\u{0007}');
            }
            if astral {
                s.push('😀');
                s.push('🦀');
            }
            s
        })
}

/// A scalar JSON value whose serialization round-trips exactly.
fn scalar() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        any::<f64>().prop_map(|f| Json::Float(if f.is_finite() { f } else { 0.0 })),
        string_content().prop_map(Json::Str),
    ]
}

/// A bounded-depth document: scalars, arrays of scalars, and objects of
/// scalars/arrays (the shapes the wire protocol actually produces).
fn document() -> impl Strategy<Value = Json> {
    prop_oneof![
        scalar(),
        prop::collection::vec(scalar(), 0..6).prop_map(Json::Arr),
        prop::collection::btree_map(string_content(), scalar(), 0..6).prop_map(Json::Obj),
        (
            prop::collection::vec(scalar(), 0..4),
            prop::collection::btree_map(string_content(), scalar(), 0..4),
        )
            .prop_map(|(arr, obj)| { Json::Arr(vec![Json::Arr(arr), Json::Obj(obj), Json::Null]) }),
    ]
}

/// An arbitrary client-assigned request id (both flavors, awkward
/// strings included).
fn request_id() -> impl Strategy<Value = RequestId> {
    prop_oneof![
        any::<i64>().prop_map(RequestId::Int),
        string_content().prop_map(RequestId::Str),
    ]
}

/// An arbitrary scalar wire value.
fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::BigInt),
        string_content().prop_map(Value::Varchar),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

/// An arbitrary wire value parameter (scalar or IN-collection).
fn param() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        scalar_value().prop_map(ParamValue::Scalar),
        prop::collection::vec(scalar_value(), 0..4).prop_map(ParamValue::Collection),
    ]
}

/// An arbitrary non-batch request (what a batch may carry).
fn sub_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (string_content(), string_content()).prop_map(|(name, sql)| Request::Prepare { name, sql }),
        (string_content(), prop::collection::vec(param(), 0..4)).prop_map(|(name, params)| {
            Request::Execute {
                name,
                params,
                cursor: None,
            }
        }),
        (string_content(), prop::collection::vec(param(), 0..4))
            .prop_map(|(sql, params)| Request::Dml { sql, params }),
        Just(Request::Stats),
        Just(Request::Revalidate),
        Just(Request::Rebalance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → parse is the identity for every document shape the
    /// protocol emits.
    #[test]
    fn documents_roundtrip(doc in document()) {
        let text = doc.to_string();
        let reparsed = parse(&text);
        prop_assert_eq!(reparsed.as_ref(), Ok(&doc), "text: {}", text);
    }

    /// Every prefix of a valid document either parses or returns a
    /// `JsonError` — truncation can never panic. (The `parse` call itself
    /// is the assertion: a panic fails the test.)
    #[test]
    fn truncated_documents_never_panic(doc in document(), cut in any::<prop::sample::Index>()) {
        let text = doc.to_string();
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        if !boundaries.is_empty() {
            let at = boundaries[cut.index(boundaries.len())];
            let _ = parse(&text[..at]);
        }
        // and with a trailing escape introducer, the classic cut-off point
        let _ = parse(&format!("{}\\", text));
        let _ = parse(&format!("\"{}", text));
        prop_assert!(true);
    }

    /// Strings with every kind of awkward content survive the escape
    /// writer and parser exactly.
    #[test]
    fn string_escapes_roundtrip(s in string_content()) {
        let j = Json::Str(s.clone());
        let reparsed = parse(&j.to_string());
        prop_assert_eq!(reparsed, Ok(j));
    }

    /// Any request under any id (or none) survives envelope
    /// serialize→parse exactly — the id-echo contract's client half.
    #[test]
    fn envelopes_roundtrip(
        tagged in any::<bool>(),
        id in request_id(),
        request in sub_request(),
    ) {
        let env = Envelope { id: tagged.then_some(id), request };
        let line = envelope_to_line(&env);
        prop_assert_eq!(parse_envelope(&line), Ok(env), "line: {}", line);
    }

    /// The id a server echoes via `attach_id` decodes back to the id the
    /// client assigned — the response half of the echo contract.
    #[test]
    fn attached_ids_echo_exactly(id in request_id()) {
        let mut response = ok_response([]);
        attach_id(&mut response, &id);
        let reparsed = parse(&response.to_string()).unwrap();
        let echoed = RequestId::from_json(reparsed.get("id").unwrap()).unwrap();
        prop_assert_eq!(echoed, id);
    }

    /// A batch of arbitrary sub-requests round-trips with order and
    /// count preserved (positional identity is the whole batch contract).
    #[test]
    fn batches_roundtrip(requests in prop::collection::vec(sub_request(), 0..6)) {
        let env = Envelope {
            id: Some(RequestId::Int(7)),
            request: Request::Batch { requests },
        };
        let line = envelope_to_line(&env);
        prop_assert_eq!(parse_envelope(&line), Ok(env), "line: {}", line);
    }
}
