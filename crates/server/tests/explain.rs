//! End-to-end tests for the `explain` verb: the static auditor's
//! bound-derivation tree travels over both codecs and decodes to the
//! same `Json` tree, every gating diagnostic names the operator, the
//! dominating cost term, and at least one concrete suggestion, and a
//! rejected `prepare` carries the Insight Assistant's structured
//! diagnosis (problem / relation / suggestions) instead of a bare
//! string.

use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::testkit::linear_predictor;
use piql_server::{Client, Json, PiqlServer, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;

const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
     WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
     ORDER BY thoughts.timestamp DESC LIMIT 10";

const UNBOUNDED: &str = "SELECT * FROM thoughts WHERE text = <t>";

fn scadr_db() -> Arc<Database<LiveCluster>> {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let config = ScadrConfig {
        users_per_node: 30,
        thoughts_per_user: 12,
        subscriptions_per_user: 5,
        max_subscriptions: 100,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    db
}

/// ~0.1 ms/row linear model: the thoughtstream with a 100-subscription
/// constraint predicts ~110ms, so it is feasible at 500ms and
/// SLO-infeasible at 50ms.
fn start_server(slo_ms: f64) -> PiqlServer {
    PiqlServer::start(
        scadr_db(),
        linear_predictor(200, 100, 2),
        SloConfig {
            slo_ms,
            interval_confidence: 1.0,
            allow_degrade: true,
        },
        "127.0.0.1:0",
    )
    .unwrap()
}

fn get<'j>(obj: &'j Json, key: &str) -> &'j Json {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field '{key}' in {obj}"))
}

fn str_field<'j>(obj: &'j Json, key: &str) -> &'j str {
    get(obj, key)
        .as_str()
        .unwrap_or_else(|| panic!("field '{key}' is not a string in {obj}"))
}

#[test]
fn explain_decodes_to_the_same_tree_over_both_codecs() {
    let server = start_server(500.0);
    let addr = server.local_addr();
    let mut v2 = Client::connect(addr).unwrap();
    let mut v3 = Client::connect_binary(addr).unwrap();

    let verdict = v2.prepare("stream", THOUGHTSTREAM).unwrap();
    assert_eq!(
        verdict.get("status").and_then(Json::as_str),
        Some("admitted")
    );

    // a prepared statement: both codecs must yield the identical tree
    // (v2 re-parses the JSON text, v3 ships the float bits — the audit
    // report contains no value where those disagree)
    let a = v2.explain("stream").unwrap();
    let b = v3.explain("stream").unwrap();
    assert_eq!(a, b, "v2 and v3 explain trees diverged");

    // and likewise for a candidate statement audited on the fly
    let ca = v2.explain_sql(THOUGHTSTREAM).unwrap();
    let cb = v3.explain_sql(THOUGHTSTREAM).unwrap();
    assert_eq!(ca, cb, "v2 and v3 candidate explain trees diverged");

    // the prepared audit and the candidate audit agree on everything
    // but the statement's name
    assert_eq!(str_field(&a, "name"), "stream");
    assert_eq!(str_field(&ca, "name"), "candidate");
    assert_eq!(get(&a, "outcome"), get(&ca, "outcome"));
    assert_eq!(get(&a, "derivation_tree"), get(&ca, "derivation_tree"));

    // the report is a full bound-provenance record, not just a verdict
    assert_eq!(str_field(&a, "outcome"), "feasible");
    assert!(
        get(&a, "predicted_p99_ms").as_f64().unwrap() > 0.0,
        "feasible audit must carry its prediction"
    );
    assert!(
        str_field(&a, "class").starts_with("Class"),
        "the audit names the statement's query class: {a}"
    );
    let tree = get(&a, "derivation_tree");
    assert!(
        tree.get("operator").is_some() && tree.get("children").is_some(),
        "derivation tree root must carry operator + children: {tree}"
    );
    // somewhere in the tree, a bound names the clause it came from
    let rendered = tree.to_string();
    assert!(
        rendered.contains("\"provenance\"") && rendered.contains("\"source_clause\""),
        "bounds must carry provenance: {tree}"
    );
}

#[test]
fn candidate_explain_names_operator_cost_term_and_suggestion() {
    let server = start_server(50.0);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // SLO-infeasible: bounded, but predicted over 50ms
    let audit = client.explain_sql(THOUGHTSTREAM).unwrap();
    assert_eq!(str_field(&audit, "outcome"), "infeasible");
    let diagnostics = get(&audit, "diagnostics").as_arr().unwrap();
    let error = diagnostics
        .iter()
        .find(|d| d.get("severity").and_then(Json::as_str) == Some("error"))
        .unwrap_or_else(|| panic!("infeasible audit must carry an error diagnostic: {audit}"));
    // the acceptance property: operator, dominating cost term, and at
    // least one concrete suggestion — all named, none generic
    assert!(
        !str_field(error, "operator").is_empty(),
        "diagnostic names the operator: {error}"
    );
    assert!(
        !str_field(error, "dominant_term").is_empty(),
        "diagnostic names the dominating cost term: {error}"
    );
    let suggestions = get(error, "suggestions").as_arr().unwrap();
    assert!(
        !suggestions.is_empty(),
        "diagnostic carries a concrete suggestion: {error}"
    );

    // unbounded: no scale-independent plan at all
    let audit = client.explain_sql(UNBOUNDED).unwrap();
    assert_eq!(str_field(&audit, "outcome"), "unbounded");
    let diagnostics = get(&audit, "diagnostics").as_arr().unwrap();
    assert!(
        diagnostics.iter().any(|d| {
            d.get("severity").and_then(Json::as_str) == Some("error")
                && d.get("suggestions")
                    .and_then(Json::as_arr)
                    .is_some_and(|s| !s.is_empty())
        }),
        "unbounded audit must explain itself with suggestions: {audit}"
    );
}

#[test]
fn explain_of_an_unknown_statement_is_a_clean_error() {
    let server = start_server(500.0);
    let mut client = Client::connect_binary(server.local_addr()).unwrap();
    let err = client.explain("nope").unwrap_err();
    assert!(err.to_string().contains("unknown statement"), "got: {err}");
    // the connection survives the error
    let audit = client.explain_sql(THOUGHTSTREAM).unwrap();
    assert_eq!(str_field(&audit, "outcome"), "feasible");
}

#[test]
fn rejected_prepare_carries_the_structured_insight_over_both_codecs() {
    let server = start_server(500.0);
    let addr = server.local_addr();
    let mut v2 = Client::connect(addr).unwrap();
    let mut v3 = Client::connect_binary(addr).unwrap();

    let a = v2.prepare("grep_thoughts", UNBOUNDED).unwrap();
    let b = v3.prepare("grep_thoughts", UNBOUNDED).unwrap();
    assert_eq!(a, b, "v2 and v3 rejection responses diverged");

    assert_eq!(str_field(&a, "status"), "rejected-unbounded");
    // the legacy flat report string survives for old clients...
    assert!(
        str_field(&a, "report").contains("not scale-independent"),
        "{a}"
    );
    // ...and the structured diagnosis rides alongside it
    assert!(
        str_field(&a, "problem").contains("scanned without a bound"),
        "problem names the failure: {a}"
    );
    assert_eq!(str_field(&a, "relation"), "thoughts");
    let suggestions = get(&a, "suggestions").as_arr().unwrap();
    assert!(
        !suggestions.is_empty(),
        "rejection must carry the assistant's suggestions: {a}"
    );
    assert!(
        suggestions.iter().all(|s| s.as_str().is_some()),
        "suggestions are plain strings: {a}"
    );
}
