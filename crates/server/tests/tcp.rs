//! End-to-end TCP protocol tests against a `LiveCluster`-backed server:
//! pagination cursors surviving reconnects, per-statement stats, and the
//! acceptance criterion — ≥8 concurrent client threads completing a
//! TPC-W-style mix with correct results and no deadlocks/panics.

use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::testkit::linear_predictor;
use piql_server::{Client, Json, PiqlServer, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use piql_workloads::tpcw::{self, TpcwConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn permissive_slo() -> SloConfig {
    SloConfig {
        slo_ms: 1e9,
        interval_confidence: 1.0,
        allow_degrade: false,
    }
}

fn start_scadr_server() -> (Arc<Database<LiveCluster>>, PiqlServer) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let config = ScadrConfig {
        users_per_node: 20,
        thoughts_per_user: 11,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    let server = PiqlServer::start(
        db.clone(),
        linear_predictor(200, 100, 2),
        permissive_slo(),
        "127.0.0.1:0",
    )
    .unwrap();
    (db, server)
}

fn uname_param(i: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i)).into()]
}

#[test]
fn cursors_survive_reconnects() {
    let (db, server) = start_scadr_server();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let verdict = client
        .prepare(
            "stream",
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 4",
        )
        .unwrap();
    assert_eq!(
        verdict.get("status").and_then(Json::as_str),
        Some("admitted")
    );

    // page 1 on the first connection
    let page1 = client.execute("stream", &uname_param(7), None).unwrap();
    assert_eq!(page1.rows.len(), 4);
    let cursor = page1.cursor.clone().expect("more pages");
    drop(client);

    // resume on a brand-new connection — the cursor is the only state
    let mut client2 = Client::connect(addr).unwrap();
    let mut rows = page1.rows;
    let mut cursor = Some(cursor);
    while let Some(c) = cursor {
        let page = client2.cursor_next("stream", &uname_param(7), c).unwrap();
        if page.rows.is_empty() {
            break;
        }
        rows.extend(page.rows);
        cursor = page.cursor;
    }

    // exactly the full ordered result, once each
    let direct = {
        let prepared = db
            .prepare("SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 100")
            .unwrap();
        let mut params = piql_core::plan::params::Params::new();
        params.set(0, Value::Varchar(scadr::username(7)));
        let mut session = piql_kv::Session::new();
        db.execute(&mut session, &prepared, &params).unwrap().rows
    };
    assert_eq!(rows.len(), 11);
    assert_eq!(rows, direct);
}

#[test]
fn stats_report_counters_and_latency() {
    let (_db, server) = start_scadr_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find_user", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    for i in 0..5 {
        let page = client.execute("find_user", &uname_param(i), None).unwrap();
        assert_eq!(page.rows.len(), 1);
    }
    // a rejection shows up in the counters too
    let rejected = client
        .prepare("grep", "SELECT * FROM thoughts WHERE text = <t>")
        .unwrap();
    assert_eq!(
        rejected.get("status").and_then(Json::as_str),
        Some("rejected-unbounded")
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("admitted").and_then(Json::as_i64), Some(1));
    assert_eq!(
        stats.get("rejected_unbounded").and_then(Json::as_i64),
        Some(1)
    );
    assert_eq!(stats.get("executed").and_then(Json::as_i64), Some(5));
    let statements = stats.get("statements").and_then(Json::as_arr).unwrap();
    assert_eq!(statements.len(), 1);
    assert_eq!(
        statements[0].get("executions").and_then(Json::as_i64),
        Some(5)
    );
    assert!(statements[0].get("p99_ms").and_then(Json::as_f64).unwrap() >= 0.0);
}

#[test]
fn malformed_lines_get_error_responses_not_disconnects() {
    let (_db, server) = start_scadr_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for bad in ["not json", "{\"cmd\":\"nope\"}", "{\"cmd\":\"execute\"}"] {
        use std::io::Write;
        let mut raw = client.raw_stream().unwrap();
        raw.write_all(bad.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
        raw.flush().unwrap();
        let response = client.raw_read_line().unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "line {bad:?} must produce an error response"
        );
    }
    // the connection still works
    let stats = client.stats().unwrap();
    assert!(stats.get("admitted").is_some());
}

/// The acceptance criterion: ≥8 concurrent client threads against
/// `LiveCluster` through TCP, TPC-W-style mix, correct results, no
/// deadlocks/panics.
#[test]
fn concurrent_tpcw_mix_over_tcp() {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let tpcw_config = TpcwConfig {
        items: 30,
        customers_per_node: 25,
        orders_per_customer: 2,
        ..Default::default()
    };
    let (n_customers, n_items, n_orders) = tpcw::setup(&db, &tpcw_config, 2).unwrap();
    let server = PiqlServer::start(
        db,
        linear_predictor(150, 40, 2),
        permissive_slo(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    // register the statements once, up front
    {
        let mut admin = Client::connect(addr).unwrap();
        for (name, sql) in tpcw::TABLE1_SQL {
            let verdict = admin.prepare(name, sql).unwrap();
            assert_eq!(
                verdict.get("status").and_then(Json::as_str),
                Some("admitted"),
                "{name}"
            );
        }
    }

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut rng = StdRng::seed_from_u64(0xC0DE + t as u64);
                for _ in 0..25 {
                    match rng.gen_range(0..5u32) {
                        0 => {
                            let i = rng.gen_range(0..n_customers);
                            let uname = tpcw::customer_uname(i);
                            let page = client
                                .execute("Home WI", &[Value::Varchar(uname.clone()).into()], None)
                                .unwrap();
                            assert_eq!(page.rows.len(), 1, "one customer row");
                            assert_eq!(
                                page.rows[0].get(0),
                                Some(&Value::Varchar(uname)),
                                "right customer came back"
                            );
                        }
                        1 => {
                            let item = rng.gen_range(0..n_items) as i32;
                            let page = client
                                .execute("Product Detail WI", &[Value::Int(item).into()], None)
                                .unwrap();
                            assert_eq!(page.rows.len(), 1);
                            assert_eq!(page.rows[0].get(0), Some(&Value::Int(item)));
                        }
                        2 => {
                            let uname = tpcw::customer_uname(rng.gen_range(0..n_customers));
                            let page = client
                                .execute(
                                    "Order Display WI Get Last Order",
                                    &[Value::Varchar(uname).into()],
                                    None,
                                )
                                .unwrap();
                            assert!(page.rows.len() <= 1);
                        }
                        3 => {
                            let surname = tpcw::SURNAMES[rng.gen_range(0..tpcw::SURNAMES.len())];
                            let page = client
                                .execute(
                                    "Search By Author WI",
                                    &[Value::Varchar(surname.to_string()).into()],
                                    None,
                                )
                                .unwrap();
                            assert!(page.rows.len() <= 50, "LIMIT respected");
                        }
                        _ => {
                            // the updating interaction: add a cart line, read
                            // it back through the Buy Request query
                            let cart = t * 1_000_000 + rng.gen_range(0..900_000);
                            let item = rng.gen_range(0..n_items) as i32;
                            client
                                .dml(
                                    "INSERT INTO shopping_cart_line \
                                     (scl_sc_id, scl_i_id, scl_qty) VALUES (<c>, <i>, <q>)",
                                    &[
                                        Value::Int(cart).into(),
                                        Value::Int(item).into(),
                                        Value::Int(1).into(),
                                    ],
                                )
                                .unwrap();
                            let page = client
                                .execute("Buy Request WI", &[Value::Int(cart).into()], None)
                                .unwrap();
                            assert_eq!(page.rows.len(), 1, "own write visible");
                        }
                    }
                }
                // every thread checks the order-line join once with a known id
                let order = tpcw::initial_order_id((t as usize) % n_orders.max(1), n_orders);
                let page = client
                    .execute(
                        "Order Display WI Get OrderLines",
                        &[Value::Int(order).into()],
                        None,
                    )
                    .unwrap();
                assert!(!page.rows.is_empty(), "initial orders have lines");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no thread panicked");
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let executed = stats.get("executed").and_then(Json::as_i64).unwrap();
    assert!(
        executed >= 8 * 25,
        "every interaction completed: {executed}"
    );
    assert_eq!(stats.get("exec_errors").and_then(Json::as_i64), Some(0));
    assert!(server.connection_count() >= 10);
}

/// The `rebalance` verb re-splits the live store's namespaces at learned
/// quantiles while the service keeps answering: a pagination sequence
/// that straddles the rebalance returns exactly the rows an uninterrupted
/// run does, and the post-rebalance balance report shows the (uniformly
/// prefixed, hence maximally skewed) SCADr keyspaces spread evenly.
#[test]
fn rebalance_verb_resplits_the_live_store_mid_pagination() {
    let (_db, server) = start_scadr_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare(
            "stream",
            "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC PAGINATE 4",
        )
        .unwrap();

    // the uninterrupted run, for comparison
    let mut uninterrupted = Vec::new();
    let mut cursor = None;
    loop {
        let page = match cursor.take() {
            None => client.execute("stream", &uname_param(3), None).unwrap(),
            Some(c) => client.cursor_next("stream", &uname_param(3), c).unwrap(),
        };
        if page.rows.is_empty() {
            break;
        }
        uninterrupted.extend(page.rows);
        match page.cursor {
            Some(c) => cursor = Some(c),
            None => break,
        }
    }
    assert_eq!(uninterrupted.len(), 11);

    // page 1 against the striped layout ...
    let page1 = client.execute("stream", &uname_param(3), None).unwrap();
    let mut rows = page1.rows;
    let mut cursor = page1.cursor;

    // ... rebalance in the middle of the pagination ...
    let report = client.rebalance().unwrap();
    assert_eq!(report.get("rebalances").and_then(Json::as_i64), Some(1));
    let balance = report.get("shard_balance").and_then(Json::as_arr).unwrap();
    assert!(!balance.is_empty());
    for ns in balance {
        let entries = ns.get("entries").and_then(Json::as_i64).unwrap();
        let shards = ns.get("shards").and_then(Json::as_i64).unwrap();
        let share = ns.get("max_entry_share").and_then(Json::as_f64).unwrap();
        if entries >= 64 {
            let threshold = (2.0 / shards as f64) * 1.5;
            assert!(
                share <= threshold,
                "{}: max entry share {share:.3} over {shards} shards exceeds {threshold:.3}",
                ns.get("namespace").and_then(Json::as_str).unwrap_or("?")
            );
        }
    }

    // ... and the cursor resumes against the new layout, no gap, no dup
    while let Some(c) = cursor.take() {
        let page = client.cursor_next("stream", &uname_param(3), c).unwrap();
        if page.rows.is_empty() {
            break;
        }
        rows.extend(page.rows);
        cursor = page.cursor;
    }
    assert_eq!(rows, uninterrupted);

    // stats carries the counter and the balance report for operators
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("rebalances").and_then(Json::as_i64), Some(1));
    assert!(stats.get("shard_balance").and_then(Json::as_arr).is_some());
}

/// Shutdown regression: a server bound to the unspecified address
/// (`0.0.0.0`) used to poke its acceptor by connecting to that exact
/// address — which fails — leaving the accept thread blocked until the
/// next real client. Dropping such a server must return promptly.
#[test]
fn dropping_a_server_bound_to_unspecified_unblocks_the_acceptor() {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let server = PiqlServer::start(
        db,
        linear_predictor(200, 100, 2),
        permissive_slo(),
        "0.0.0.0:0",
    )
    .unwrap();
    let port = server.local_addr().port();

    // reachable via loopback even though bound to 0.0.0.0
    let mut client = Client::connect(("127.0.0.1", port)).unwrap();
    assert!(client.stats().unwrap().get("ok").is_some());
    drop(client);

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        drop(server);
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("drop must unblock the accept thread without a real client connecting");
}
