//! Property tests for per-tenant admission budgets: across arbitrary
//! interleavings of admissions, permit drops (success, error, and
//! disconnect paths all reduce to `Drop`), and live reconfiguration, the
//! in-flight count equals the number of live permits — it never goes
//! negative, never leaks a slot, and returns to zero at quiescence. A
//! threaded smoke test checks the same under real contention.

use piql_server::{BudgetDecision, BudgetPolicy, TenantBudget};
use proptest::prelude::*;
use std::time::Duration;

/// One step of a budget's life. Reject/degrade/disconnect paths all end
/// in permits dropping, so dropping some or all held permits models them.
#[derive(Debug, Clone)]
enum Op {
    Admit,
    DropOldest,
    /// Connection death: every permit the "connection" held drops at once.
    DropAll,
    Configure {
        capacity: Option<u32>,
        policy: u8,
    },
}

fn decode_policy(code: u8) -> BudgetPolicy {
    match code % 3 {
        0 => BudgetPolicy::Reject,
        1 => BudgetPolicy::Shed,
        // Zero wait: queue-policy admits/timeouts stay single-threaded.
        _ => BudgetPolicy::Queue {
            max_wait: Duration::from_millis(0),
        },
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Admit),
        Just(Op::Admit),
        Just(Op::Admit),
        Just(Op::DropOldest),
        Just(Op::DropAll),
        (any::<bool>(), 0u32..5, any::<u8>()).prop_map(|(unlimited, cap, policy)| {
            Op::Configure {
                capacity: if unlimited { None } else { Some(cap) },
                policy,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn in_flight_equals_live_permits(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let budget = TenantBudget::new("prop", Some(2), BudgetPolicy::Reject);
        let mut held = Vec::new();
        for op in ops {
            match op {
                Op::Admit => match budget.admit() {
                    BudgetDecision::Go(Some(permit)) | BudgetDecision::Shed(permit) => {
                        held.push(permit)
                    }
                    BudgetDecision::Go(None) | BudgetDecision::Reject => {}
                },
                Op::DropOldest => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
                Op::DropAll => held.clear(),
                Op::Configure { capacity, policy } => {
                    budget.configure(capacity, decode_policy(policy))
                }
            }
            // The accounting invariant, after every single step: the
            // in-flight count is exactly the live permits — no negative
            // wrap, no leaked slot, whatever the reject/drop history.
            prop_assert_eq!(budget.in_flight() as usize, held.len());
        }
        held.clear();
        prop_assert_eq!(budget.in_flight(), 0);
        let snapshot = budget.snapshot();
        prop_assert_eq!(snapshot.in_flight, 0);
    }
}

/// Same invariant under real contention: threads hammer one bounded
/// budget, randomly holding and dropping permits; the count never
/// exceeds the shed overflow band and drains to exactly zero.
#[test]
fn concurrent_admit_release_drains_to_zero() {
    let budget = TenantBudget::new("smoke", Some(3), BudgetPolicy::Shed);
    let band = 6; // capacity 3, shed overflow band = 2x
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let budget = budget.clone();
            std::thread::spawn(move || {
                let mut held = Vec::new();
                for i in 0..500 {
                    match budget.admit() {
                        BudgetDecision::Go(Some(p)) | BudgetDecision::Shed(p) => held.push(p),
                        BudgetDecision::Go(None) | BudgetDecision::Reject => {}
                    }
                    let inflight = budget.in_flight();
                    assert!(inflight <= band, "in_flight {inflight} over band {band}");
                    if (i + t) % 3 == 0 {
                        held.clear();
                    } else if !held.is_empty() && i % 2 == 0 {
                        held.remove(0);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(budget.in_flight(), 0);
    let snapshot = budget.snapshot();
    assert!(snapshot.admitted + snapshot.shed > 0);
    assert_eq!(snapshot.in_flight, 0);
}
