//! # PIQL — Performance-Insightful Query Language
//!
//! A from-scratch Rust reproduction of *PIQL: Success-Tolerant Query
//! Processing in the Cloud* (Armbrust et al., PVLDB 5(3), 2011): a
//! declarative query language with **scale independence** — every compiled
//! query carries a static bound on the key/value-store operations it may
//! perform, so queries that meet their SLO on day one keep meeting it when
//! the site goes viral.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the PIQL dialect, catalog, and two-phase scale-independent
//!   optimizer (the paper's primary contribution),
//! * [`kv`] — a deterministic virtual-time simulation of a distributed
//!   ordered key/value store (the SCADS substrate),
//! * [`engine`] — the execution engine, pagination cursors, and write path,
//! * [`predict`] — the SLO compliance prediction framework,
//! * [`workloads`] — the TPC-W and SCADr benchmarks with a closed-loop
//!   driver,
//! * [`server`] — the success-tolerant query service: SLO admission
//!   control, a JSON-over-TCP front-end, and the real-time `LiveCluster`
//!   backend it serves from.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use piql_core as core;
pub use piql_engine as engine;
pub use piql_kv as kv;
pub use piql_predict as predict;
pub use piql_server as server;
pub use piql_workloads as workloads;

pub use piql_core::opt::{Compiled, Objective, OptError, Optimizer, QueryClass};
pub use piql_core::plan::params::{ParamValue, Params};
pub use piql_core::value::{DataType, Value};
pub use piql_engine::{Cursor, Database, DbError, ExecStrategy, Prepared, QueryResult};
pub use piql_kv::{ClusterConfig, LiveCluster, LiveConfig, Session, SimCluster};
