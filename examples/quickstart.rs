//! Quickstart: create a schema with a cardinality constraint, load data,
//! compile a scale-independent query, inspect its static bounds, execute
//! it, and page through results with a serializable cursor.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use piql::engine::{Database, ExecStrategy};
use piql::kv::{ClusterConfig, Session, SimCluster};
use piql::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated 6-node distributed key/value store (2x replication,
    // EC2-flavored latency model). All time below is virtual.
    let cluster = Arc::new(SimCluster::new(ClusterConfig::default().with_nodes(6)));
    let db = Database::new(cluster);

    // PIQL DDL: standard SQL plus CARDINALITY LIMIT (§4.2 of the paper).
    db.execute_ddl(
        "CREATE TABLE users (
           username VARCHAR(24) NOT NULL,
           home_town VARCHAR(32),
           PRIMARY KEY (username) )",
    )?;
    db.execute_ddl(
        "CREATE TABLE messages (
           recipient VARCHAR(24) NOT NULL,
           sent_at   TIMESTAMP NOT NULL,
           sender    VARCHAR(24),
           body      VARCHAR(140),
           PRIMARY KEY (recipient, sent_at),
           FOREIGN KEY (recipient) REFERENCES users,
           CARDINALITY LIMIT 200 (recipient) )",
    )?;

    // Load some data (bulk load maintains indexes, skips latency).
    db.bulk_load(
        "users",
        (0..500).map(|i| {
            Tuple::new(vec![
                Value::Varchar(format!("user{i:03}")),
                Value::Varchar("Berkeley".into()),
            ])
        }),
    )?;
    db.bulk_load(
        "messages",
        (0..500).flat_map(|i| {
            (0..50).map(move |m| {
                Tuple::new(vec![
                    Value::Varchar(format!("user{i:03}")),
                    Value::Timestamp(1_700_000_000_000 + m * 977),
                    Value::Varchar(format!("user{:03}", (i + m as usize) % 500)),
                    Value::Varchar(format!("message {m}")),
                ])
            })
        }),
    )?;
    db.cluster().rebalance();

    // Compile a paginated query. The compiler proves a bound on the
    // key/value operations BEFORE execution — that is scale independence.
    let inbox = db.prepare(
        "SELECT * FROM messages WHERE recipient = <user> \
         ORDER BY sent_at DESC PAGINATE 10",
    )?;
    println!("query class:     {}", inbox.compiled.class);
    println!(
        "static bound:    ≤{} key/value requests, ≤{} tuples per page",
        inbox.compiled.bounds.requests, inbox.compiled.bounds.tuples
    );
    println!(
        "physical plan:\n{}",
        inbox.compiled.physical.display_with(&inbox.compiled.schema)
    );

    // Execute page 1, then resume from a serialized cursor — the cursor can
    // be shipped to a browser and back (§4.1); servers stay stateless.
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar("user042".into()));
    let page1 = db.execute(&mut session, &inbox, &params)?;
    println!(
        "page 1: {} rows in {:.1} ms (virtual)",
        page1.rows.len(),
        session.now as f64 / 1000.0
    );
    let cursor_bytes = page1.cursor.expect("more pages").to_bytes();
    println!("cursor: {} bytes, ships with the page", cursor_bytes.len());

    let cursor = piql::engine::Cursor::from_bytes(&cursor_bytes)?;
    let page2 = db.execute_with(
        &mut session,
        &inbox,
        &params,
        ExecStrategy::Parallel,
        Some(&cursor),
    )?;
    println!(
        "page 2: {} rows; first row: {}",
        page2.rows.len(),
        page2.rows[0]
    );

    // A query the compiler refuses — with an explanation and a fix.
    let err = db
        .prepare("SELECT * FROM messages WHERE sender = <user>")
        .unwrap_err();
    println!("\nrejected query:\n{err}");
    Ok(())
}
