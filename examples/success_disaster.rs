//! The "success disaster" in one file (§1, §8.3): the same query compiled
//! by a traditional cost-based optimizer and by PIQL, executed as the
//! database experiences success. The cost-based plan is faster on day one
//! and melts down when a user goes viral; the PIQL plan never moves.
//!
//! ```sh
//! cargo run --release --example success_disaster
//! ```

use piql::core::catalog::{Statistics, TableStats};
use piql::core::opt::Optimizer;
use piql::engine::{Database, ExecStrategy};
use piql::kv::{ClusterConfig, Session, SimCluster};
use piql::{Params, Value};
use piql_core::tuple::Tuple;
use std::sync::Arc;

const QUERY: &str = "SELECT owner, target FROM subscriptions \
     WHERE target = <who> AND owner IN [2: friends MAX 50]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(SimCluster::new(
        ClusterConfig::default().with_nodes(8).with_seed(4),
    ));
    let db = Database::new(cluster);
    db.execute_ddl(
        "CREATE TABLE subscriptions ( \
           owner VARCHAR(24) NOT NULL, target VARCHAR(24) NOT NULL, \
           PRIMARY KEY (owner, target), CARDINALITY LIMIT 50 (owner) )",
    )?;

    // day 1: a niche service — everyone has a handful of subscribers
    let uname = |i: usize| format!("user{i:06}");
    db.bulk_load(
        "subscriptions",
        (0..2_000).flat_map(|i| {
            (1..=5).map(move |d| {
                Tuple::new(vec![
                    Value::Varchar(format!("user{:06}", (i + d) % 2000)),
                    Value::Varchar(format!("user{i:06}")),
                ])
            })
        }),
    )?;
    db.cluster().rebalance();

    // two compilers, same query
    let piql_plan = db.prepare(QUERY)?;
    let mut stats = Statistics::new();
    let mut ts = TableStats::with_rows(10_000);
    ts.set_avg_group_size("target", 5.0);
    stats.set_table(db.catalog().table("subscriptions").unwrap().id, ts);
    let cost_plan = db.prepare_with(QUERY, &Optimizer::cost_based(stats))?;
    println!(
        "PIQL plan:     bounded, ≤{} requests — always",
        piql_plan.compiled.bounds.requests
    );
    println!(
        "cost-based:    unbounded scan, ~{} requests *on average today*\n",
        cost_plan.compiled.bounds.requests
    );

    let friends: Vec<Value> = (0..50).map(|i| Value::Varchar(uname(i * 7))).collect();
    let run = |label: &str, who: &str, clock: &mut u64| {
        let mut params = Params::new();
        params.set(0, Value::Varchar(who.to_string()));
        params.set(1, friends.clone());
        for (name, plan) in [("cost-based", &cost_plan), ("PIQL", &piql_plan)] {
            let mut s = Session::at(*clock);
            let t0 = s.begin();
            db.execute_with(&mut s, plan, &params, ExecStrategy::Parallel, None)
                .unwrap();
            println!(
                "  {label:<28} {name:<11} {:>7.1} ms  ({} kv requests)",
                s.elapsed_since(t0) as f64 / 1000.0,
                s.stats.logical_requests
            );
            *clock = s.now + 10_000;
        }
    };

    let mut clock = 0u64;
    println!("day 1 — ordinary user (5 subscribers):");
    run("ordinary user", &uname(100), &mut clock);

    // the site succeeds: one user goes viral
    println!("\nday 90 — someone went viral (100k subscribers):");
    let celebrity = "ladygaga";
    db.bulk_load(
        "subscriptions",
        (0..100_000).map(|i| {
            Tuple::new(vec![
                Value::Varchar(format!("fan{i:07}")),
                Value::Varchar(celebrity.to_string()),
            ])
        }),
    )?;
    db.cluster().rebalance();
    run("viral user", celebrity, &mut clock);

    println!(
        "\nthe cost-based plan scales with the *data*; the PIQL plan scales with the *bound*."
    );
    Ok(())
}
