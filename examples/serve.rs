//! `piql-server` in five minutes: start the query service on a real-time
//! store, register the SCADr thoughtstream, and watch success-tolerance at
//! the API boundary — one registration admitted, one degraded to a
//! SLO-feasible page size, one refused outright (with the Performance
//! Insight report) before it can touch storage. Then the feedback loop:
//! the store drifts slow, a re-validation sweep folds the observed
//! latencies back into the models, and the admitted statement is flagged
//! — same process, no restart. Along the way a second client negotiates
//! the binary v3 codec on the same port and races the JSON client through
//! pipelined point reads (served by the zero-allocation fast path).
//!
//! Run with: `cargo run --example serve`
//!
//! Pass `--data-dir <path>` to run the durable flavor: data, prepared
//! statements, and live-trained models are journaled to a write-ahead log
//! with group commit, and a second run against the same directory recovers
//! everything and re-validates admissions at boot.

use piql::engine::Database;
use piql::kv::{LiveCluster, LiveConfig};
use piql::Value;
use piql_server::testkit::linear_predictor;
use piql_server::{
    decode_page, open_durable, Client, DurableOptions, Json, PiqlServer, Request, SloConfig,
};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mut data_dir: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => {
                data_dir = Some(args.next().ok_or("--data-dir needs a path")?.into());
            }
            other => return Err(format!("unknown argument '{other}'").into()),
        }
    }

    let config = ScadrConfig {
        users_per_node: 100,
        thoughts_per_user: 15,
        subscriptions_per_user: 8,
        max_subscriptions: 100,
        ..Default::default()
    };
    // -- the service: 80ms p99 SLO, operator costs from a linear model
    // (a deployment would train these against its own store, §6.1)
    let slo = SloConfig {
        slo_ms: 80.0,
        interval_confidence: 1.0,
        allow_degrade: true,
    };

    // -- a wall-clock store with the SCADr schema and a little data;
    // with `--data-dir`, everything below survives a `kill -9`
    let (cluster, mut server, stack) = if let Some(dir) = data_dir {
        let mut opts = DurableOptions::new(&dir);
        opts.slo = slo;
        let bootstrap_config = config.clone();
        let stack = open_durable(opts, linear_predictor(200, 100, 3), move |db| {
            scadr::setup(db, &bootstrap_config, 2).map(|_| ())
        })?;
        let r = &stack.report;
        println!(
            "durable store at {}: generation {}, snapshot {} ({} entries), \
             {} WAL record(s) replayed, {} statement(s), {} DDL, \
             {} model rotation(s) — recovered in {}ms",
            dir.display(),
            r.generation,
            if r.snapshot_loaded { "loaded" } else { "none" },
            r.snapshot_entries,
            r.wal_records,
            r.statements,
            r.ddl,
            r.model_rotations,
            r.duration_ms,
        );
        for re in &stack.readmissions {
            println!("  re-admitted '{}': {}", re.name, re.verdict);
        }
        println!();
        let server = PiqlServer::start_with_registry(stack.registry.clone(), "127.0.0.1:0")?;
        (stack.cluster.clone(), server, Some(stack))
    } else {
        let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
        let db = Arc::new(Database::new(cluster.clone()));
        let n_users = scadr::setup(&db, &config, 2)?;
        println!(
            "loaded SCADr: {n_users} users on a live sharded store \
             ({} round fan-out workers shared by all sessions)\n",
            cluster.pool().worker_count()
        );
        let server = PiqlServer::start(db, linear_predictor(200, 100, 3), slo, "127.0.0.1:0")?;
        (cluster, server, None)
    };
    // live samples fold back into the models periodically; the period is
    // long so this demo's forced `revalidate` below owns the scripted
    // sweep (a background tick landing mid-script would drain the samples
    // first and make the printed summary a no-op)
    server.enable_revalidation(std::time::Duration::from_secs(60));
    println!(
        "piql-server listening on {} (SLO: p99 ≤ 80ms, periodic re-validation on)\n",
        server.local_addr()
    );

    let mut client = Client::connect(server.local_addr())?;

    // -- 1. a cheap point query: admitted as written
    let verdict = client.prepare("find_user", "SELECT * FROM users WHERE username = <u>")?;
    print_verdict("find_user", &verdict);
    let page = client.execute(
        "find_user",
        &[Value::Varchar(scadr::username(42)).into()],
        None,
    )?;
    println!(
        "   → executed: {} row(s), e.g. {}\n",
        page.rows.len(),
        page.rows[0]
    );

    // -- 2. the thoughtstream: over SLO as written (100 subscriptions ×
    //       10-thought pages), admitted with an advisor-degraded page size
    let verdict = client.prepare(
        "thoughtstream",
        "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
         WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
         ORDER BY thoughts.timestamp DESC LIMIT 10",
    )?;
    print_verdict("thoughtstream", &verdict);
    let page = client.execute(
        "thoughtstream",
        &[Value::Varchar(scadr::username(7)).into()],
        None,
    )?;
    println!(
        "   → executed: {} row(s) under the degraded bound\n",
        page.rows.len()
    );

    // -- 3. an unbounded query: REFUSED before any storage request
    let ops_before = cluster.op_count();
    let verdict = client.prepare("grep", "SELECT * FROM thoughts WHERE text = <t>")?;
    print_verdict("grep", &verdict);
    println!(
        "   → storage operations issued while rejecting: {}\n",
        cluster.op_count() - ops_before
    );

    // -- 4. the page-view, amortized (PROTOCOL.md §5–6): a fan-out app
    //       server pipelines N statements into ~1 round trip instead of N
    let t0 = Instant::now();
    let mut sequential_rows = 0;
    for i in 0..10 {
        sequential_rows += client
            .execute(
                "find_user",
                &[Value::Varchar(scadr::username(i)).into()],
                None,
            )?
            .rows
            .len();
    }
    let sequential = t0.elapsed();
    let t0 = Instant::now();
    let mut pipeline = client.pipeline();
    for i in 0..10 {
        pipeline.queue_execute("find_user", &[Value::Varchar(scadr::username(i)).into()]);
    }
    let pipelined_rows: usize = pipeline
        .flush()?
        .iter()
        .map(|r| decode_page(r).map(|p| p.rows.len()))
        .sum::<Result<usize, _>>()?;
    let pipelined = t0.elapsed();
    assert_eq!(pipelined_rows, sequential_rows);
    println!(
        "page-view of 10 statements: {sequential_rows} rows — sequential {:.2}ms, \
         pipelined {:.2}ms (one write, answers in completion order)",
        sequential.as_secs_f64() * 1e3,
        pipelined.as_secs_f64() * 1e3,
    );
    // a batch is one *line*: sub-requests share a session sequentially,
    // so the INSERT is visible to the read right behind it (and a
    // mid-batch error would answer in place without aborting the rest)
    let results = client.execute_batch(&[
        Request::Prepare {
            name: "my_thoughts".into(),
            sql: "SELECT * FROM thoughts WHERE owner = <u> ORDER BY timestamp DESC LIMIT 3".into(),
        },
        Request::Dml {
            sql: "INSERT INTO thoughts (owner, timestamp, text) VALUES (<u>, <ts>, <txt>)".into(),
            params: vec![
                Value::Varchar(scadr::username(42)).into(),
                Value::Timestamp(9_000_000_000_000_000).into(),
                Value::Varchar("posted and read back in one round trip".into()).into(),
            ],
        },
        Request::Execute {
            name: "my_thoughts".into(),
            params: vec![Value::Varchar(scadr::username(42)).into()],
            cursor: None,
        },
    ])?;
    let read_back = decode_page(&results[2])?;
    println!(
        "batch of [prepare, post thought, read own stream]: one round trip — \
         prepare {}, write ok={}, newest row: {}\n",
        results[0]
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("?"),
        results[1]
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        read_back.rows[0],
    );

    // -- 5. the binary wire protocol (v3, PROTOCOL.md §9): same port —
    //       a client opts in with a magic preamble, everything else keeps
    //       speaking JSON v2. Point reads take the server's
    //       allocation-free fast path.
    let mut bclient = Client::connect_binary(server.local_addr())?;
    let fast_before = client
        .stats()?
        .get("fast_point_reads")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    let reads = 400;
    let t0 = Instant::now();
    let mut pipeline = client.pipeline();
    for i in 0..reads {
        pipeline.queue_execute("find_user", &[Value::Varchar(scadr::username(i)).into()]);
    }
    pipeline.flush()?;
    let json_elapsed = t0.elapsed();
    let t0 = Instant::now();
    let mut pipeline = bclient.pipeline();
    for i in 0..reads {
        pipeline.queue_execute("find_user", &[Value::Varchar(scadr::username(i)).into()]);
    }
    pipeline.flush()?;
    let bin_elapsed = t0.elapsed();
    let fast_reads = bclient
        .stats()?
        .get("fast_point_reads")
        .and_then(Json::as_i64)
        .unwrap_or(0)
        - fast_before;
    println!(
        "binary v{} negotiated on the same port: {reads} pipelined point reads — \
         json-v2 {:.2}ms, binary-v3 {:.2}ms ({fast_reads} answered by the \
         zero-allocation fast path)\n",
        bclient.wire_version(),
        json_elapsed.as_secs_f64() * 1e3,
        bin_elapsed.as_secs_f64() * 1e3,
    );
    // fold the race's healthy samples into the models now, so the drift
    // sweep below sees the slow ones undiluted
    client.revalidate()?;

    // -- 6. the feedback loop: the store drifts slow, live samples fold
    //       back into the models, and a sweep flags the admitted statement
    println!("injecting 120ms/request latency drift into the running store...");
    cluster.set_request_delay_us(120_000);
    for _ in 0..3 {
        client.execute(
            "find_user",
            &[Value::Varchar(scadr::username(42)).into()],
            None,
        )?;
    }
    let sweep = client.revalidate()?;
    println!(
        "revalidate: folded {} live samples, flagged {} statement(s)",
        sweep
            .get("samples_folded")
            .and_then(Json::as_i64)
            .unwrap_or(0),
        sweep.get("flagged").and_then(Json::as_i64).unwrap_or(0),
    );
    if let Some(statements) = client.stats()?.get("statements").and_then(Json::as_arr) {
        for s in statements {
            if s.get("name").and_then(Json::as_str) == Some("find_user") {
                println!(
                    "! find_user is now {} — refreshed p99 prediction {:.1}ms \
                     vs observed p99 {:.1}ms\n",
                    s.get("status").and_then(Json::as_str).unwrap_or("?"),
                    s.get("predicted_p99_ms")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                    s.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
                );
            }
        }
    }
    cluster.set_request_delay_us(0);

    // -- service counters
    let stats = client.stats()?;
    println!(
        "stats: admitted={} degraded={} rejected_unbounded={} executed={} revalidations={}",
        stats.get("admitted").and_then(Json::as_i64).unwrap_or(0),
        stats.get("degraded").and_then(Json::as_i64).unwrap_or(0),
        stats
            .get("rejected_unbounded")
            .and_then(Json::as_i64)
            .unwrap_or(0),
        stats.get("executed").and_then(Json::as_i64).unwrap_or(0),
        stats
            .get("revalidations")
            .and_then(Json::as_i64)
            .unwrap_or(0),
    );

    // -- durable mode: checkpoint over the wire, then shut down cleanly.
    // Run again with the same --data-dir: same data, same predictions,
    // zero re-registration.
    if let Some(stack) = stack {
        // what persists is the *live* model state, so a restarted server
        // would re-admit find_user against the drifted models and reject
        // it at boot. Let the cleared drift rotate out first, so the
        // checkpointed prediction is the recovered one.
        for _ in 0..3 {
            for _ in 0..3 {
                client.execute(
                    "find_user",
                    &[Value::Varchar(scadr::username(42)).into()],
                    None,
                )?;
            }
            client.revalidate()?;
        }
        let summary = client.snapshot()?;
        println!(
            "snapshot: generation {} — {} entries, {} bytes ({} WAL bytes compacted away)",
            summary
                .get("generation")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            summary.get("entries").and_then(Json::as_i64).unwrap_or(0),
            summary.get("bytes").and_then(Json::as_i64).unwrap_or(0),
            summary
                .get("compacted_wal_bytes")
                .and_then(Json::as_i64)
                .unwrap_or(0),
        );
        if let Some(d) = client.stats()?.get("durability") {
            println!(
                "durability health: policy={} wal_bytes={} records_since_snapshot={}",
                d.get("policy").and_then(Json::as_str).unwrap_or("?"),
                d.get("wal_bytes").and_then(Json::as_i64).unwrap_or(0),
                d.get("wal_records").and_then(Json::as_i64).unwrap_or(0),
            );
        }
        stack.close();
    }
    Ok(())
}

fn print_verdict(name: &str, verdict: &Json) {
    let status = verdict.get("status").and_then(Json::as_str).unwrap_or("?");
    match status {
        "admitted" => println!(
            "✓ {name}: ADMITTED (predicted p99 {:.1}ms)",
            verdict
                .get("predicted_p99_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        ),
        "degraded" => println!(
            "~ {name}: ADMITTED DEGRADED — LIMIT {} → {} (predicted p99 {:.1}ms)",
            verdict
                .get("original_limit")
                .and_then(Json::as_i64)
                .unwrap_or(0),
            verdict.get("limit").and_then(Json::as_i64).unwrap_or(0),
            verdict
                .get("predicted_p99_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        ),
        "rejected-slo" => println!(
            "✗ {name}: REJECTED — predicted p99 {:.1}ms exceeds the SLO",
            verdict
                .get("predicted_p99_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        ),
        "rejected-unbounded" => {
            println!("✗ {name}: REJECTED — not scale-independent");
            if let Some(report) = verdict.get("report").and_then(Json::as_str) {
                for line in report.lines() {
                    println!("     {line}");
                }
            }
        }
        other => println!("? {name}: {other}"),
    }
}
