//! The SLO compliance workflow (§6): train operator models on a
//! production-like cluster, predict a query's p99 distribution across
//! intervals, check an SLO, and let the Performance Insight Assistant
//! suggest the largest cardinality limit that still meets it (Figure 6).
//!
//! ```sh
//! cargo run --release --example slo_advisor
//! ```

use piql::core::catalog::{Catalog, TableDef};
use piql::core::opt::Optimizer;
use piql::core::parser::parse_select;
use piql::core::value::DataType;
use piql::kv::{ClusterConfig, SimCluster};
use piql_predict::{train, Heatmap, SloPredictor, TrainConfig};

fn catalog_with_limit(subs: u64) -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(subs, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build(),
    )
    .unwrap();
    cat
}

fn main() {
    // 1. train once per cluster configuration (§6.1) — these models are not
    // application-specific and could ship per public cloud
    let cluster = SimCluster::new(ClusterConfig::default().with_nodes(10).with_seed(3));
    let config = TrainConfig {
        intervals: 12,
        samples_per_interval: 8,
        alphas: vec![1, 10, 50, 100, 200, 300, 400, 500],
        alpha_js: vec![1, 10, 25, 50],
        betas: vec![40, 160, 640],
        ..TrainConfig::default()
    };
    println!(
        "training operator models ({} intervals)...",
        config.intervals
    );
    let models = train(&cluster, &config);
    println!(
        "trained {} grid points from {} samples\n",
        models.keys().len(),
        models.total_samples()
    );
    let predictor = SloPredictor::new(models);

    // 2. predict the thoughtstream query for one concrete schema
    let optimizer = Optimizer::scale_independent();
    let compile = |subs: u64, page: u64| {
        optimizer
            .compile(
                &catalog_with_limit(subs),
                &parse_select(&format!(
                    "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
                     WHERE thoughts.owner = s.target AND s.owner = <u> \
                     ORDER BY thoughts.timestamp DESC LIMIT {page}"
                ))
                .unwrap(),
            )
            .unwrap()
    };
    let pred = predictor.predict(&compile(100, 10));
    println!("thoughtstream with CARDINALITY LIMIT 100, page 10:");
    println!(
        "  predicted p99 per interval: median {:.0} ms, p90 {:.0} ms, max {:.0} ms",
        pred.p99_quantile_ms(0.5),
        pred.p99_quantile_ms(0.9),
        pred.max_p99_ms
    );
    for slo in [150.0, 300.0, 500.0] {
        println!(
            "  SLO \"99% under {slo:.0} ms per interval\": risk {:.0}% of intervals -> {}",
            pred.violation_risk(slo) * 100.0,
            if pred.meets_slo(slo, 0.9) {
                "MEETS (90% confidence)"
            } else {
                "AT RISK"
            }
        );
    }

    // 3. the Figure 6 heatmap + limit suggestion
    println!("\nbuilding the Figure 6 heatmap...");
    let heat = Heatmap::build(
        &predictor,
        "subscriptions per user",
        "records per page",
        (100..=500).step_by(50).collect(),
        (10..=50).step_by(10).collect(),
        compile,
    );
    println!("{}", heat.render());
    for slo in [300.0, 500.0] {
        println!(
            "largest CARDINALITY LIMIT meeting a {slo:.0} ms SLO at 10 records/page: {:?}",
            heat.suggest_row_limit(10, slo)
        );
    }
}
