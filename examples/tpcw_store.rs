//! A miniature TPC-W run (§8.1.1): load the bookstore, run the ordering mix
//! closed-loop on a simulated cluster, and report WIPS plus per-interaction
//! p99 latencies.
//!
//! ```sh
//! cargo run --release --example tpcw_store
//! ```

use piql::engine::Database;
use piql::kv::SECONDS;
use piql_kv::{ClusterConfig, SimCluster};
use piql_workloads::driver::{run_closed_loop, DriverConfig};
use piql_workloads::tpcw::{setup, TpcwConfig, TpcwWorkload};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 10;
    let cluster = Arc::new(SimCluster::new(
        ClusterConfig::default().with_nodes(nodes).with_seed(1),
    ));
    let db = Database::new(cluster);
    let config = TpcwConfig {
        items: 5_000,
        customers_per_node: 100,
        ..Default::default()
    };
    let (customers, items, orders) = setup(&db, &config, nodes)?;
    println!(
        "TPC-W loaded: {customers} customers, {items} items, {orders} orders on {nodes} nodes"
    );

    let workload = TpcwWorkload::new(&db, customers, items, orders)?;
    println!("\ncompiled web-interaction queries (all scale-independent):");
    for (label, prepared) in workload.queries.labeled() {
        println!(
            "  {:<34} {:<22} ≤{} requests",
            label,
            format!("{}", prepared.compiled.class),
            prepared.compiled.bounds.requests
        );
    }

    let cfg = DriverConfig {
        sessions: 50, // 5 client machines x 10 threads (§8.5)
        duration_us: 20 * SECONDS,
        warmup_us: 3 * SECONDS,
        ..Default::default()
    };
    println!("\nrunning the ordering mix for 20 virtual seconds...");
    let m = run_closed_loop(&db, &workload, &cfg)?;
    println!(
        "throughput: {:.0} WIPS | pooled p99: {:.0} ms | {} interactions",
        m.throughput_per_sec(),
        m.quantile_ms(0.99),
        m.count()
    );
    println!("\nper-interaction p99 (ms):");
    for (kind, label) in piql_workloads::Workload::kinds(&workload)
        .iter()
        .enumerate()
    {
        let p99 = m.quantile_ms_of(kind, 0.99);
        if p99 > 0.0 {
            println!("  {label:<18} {p99:>6.0}");
        }
    }
    let snap = db.cluster().stats.snapshot();
    println!(
        "\ncluster totals: {} rounds, {} logical / {} physical requests",
        snap.rounds, snap.logical_requests, snap.physical_requests
    );
    Ok(())
}
