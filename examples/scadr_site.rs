//! The SCADr microblogging site (§8.1.2) end to end: schema with the §4.2
//! cardinality constraint, the Figure 3 optimization stages for the
//! thoughtstream query, the Performance Insight Assistant rejecting the
//! same query when the constraint is missing, and paginated execution.
//!
//! ```sh
//! cargo run --example scadr_site
//! ```

use piql::engine::Database;
use piql::kv::{ClusterConfig, Session, SimCluster};
use piql::Params;
use piql::Value;
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(SimCluster::new(ClusterConfig::default().with_nodes(8)));
    let db = Database::new(cluster);
    let config = ScadrConfig {
        users_per_node: 100,
        max_subscriptions: 100,
        ..Default::default()
    };
    let n_users = scadr::setup(&db, &config, 8)?;
    println!("loaded SCADr: {n_users} users on 8 storage nodes\n");

    // ---- Figure 3: the thoughtstream query through the compiler stages
    let sql = "SELECT thoughts.* \
        FROM subscriptions s JOIN thoughts \
        WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
        ORDER BY thoughts.timestamp DESC LIMIT 10";
    let prepared = db.prepare(sql)?;
    println!("=== Figure 3: optimization stages of the thoughtstream query ===");
    println!("(a) query:\n{sql}\n");
    println!("{}", prepared.compiled.explain());
    println!(
        "static bounds: ≤{} requests / ≤{} round trips / {}",
        prepared.compiled.bounds.requests, prepared.compiled.bounds.rounds, prepared.compiled.class,
    );

    // ---- execute it
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(7)));
    let t0 = session.begin();
    let result = db.execute(&mut session, &prepared, &params)?;
    println!(
        "\nthoughtstream for {}: {} thoughts in {:.1} virtual ms \
         ({} kv requests, bound was {})\n",
        scadr::username(7),
        result.rows.len(),
        session.elapsed_since(t0) as f64 / 1000.0,
        session.stats.logical_requests,
        prepared.compiled.bounds.requests,
    );

    // ---- the Performance Insight Assistant (§6.4) on a broken schema
    println!("=== Insight Assistant: same query, schema WITHOUT the constraint ===");
    let cluster2 = Arc::new(SimCluster::new(ClusterConfig::instant(2)));
    let db2 = Database::new(cluster2);
    db2.execute_ddl("CREATE TABLE users (username VARCHAR(24) NOT NULL, PRIMARY KEY (username))")?;
    db2.execute_ddl(
        "CREATE TABLE subscriptions (owner VARCHAR(24) NOT NULL, \
         target VARCHAR(24) NOT NULL, approved BOOL, PRIMARY KEY (owner, target))",
    )?;
    db2.execute_ddl(
        "CREATE TABLE thoughts (owner VARCHAR(24) NOT NULL, \
         timestamp TIMESTAMP NOT NULL, text VARCHAR(140), PRIMARY KEY (owner, timestamp))",
    )?;
    match db2.prepare(sql) {
        Err(e) => println!("{e}"),
        Ok(_) => unreachable!("must be rejected without the cardinality limit"),
    }
    Ok(())
}
